// Tests for encoded-domain predicate evaluation: range predicates
// translated into dictionary-code / packed-offset space once per segment,
// RLE runs tested per-run, and the min/max all-pass proof — each
// cross-checked bit-for-bit against decode-then-compare.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "columnstore/columnstore.h"
#include "common/rng.h"

namespace hd {
namespace {

class EncodedPredTest : public ::testing::Test {
 protected:
  EncodedPredTest() : pool_(&disk_) {}

  // Reference: decode every value and compare in the value domain.
  static std::vector<uint8_t> Naive(const ColumnSegment& /*s*/,
                                    const std::vector<int64_t>& vals,
                                    size_t start, size_t count, int64_t lo,
                                    int64_t hi) {
    std::vector<uint8_t> out(count);
    for (size_t i = 0; i < count; ++i) {
      out[i] = vals[start + i] >= lo && vals[start + i] <= hi;
    }
    return out;
  }

  // Encoded path: TranslateRange once, EvalRange bitmap over the window,
  // expanded to bytes for comparison with the naive oracle. The SelVector
  // is poisoned all-set first: refine=false must fully overwrite it.
  static std::vector<uint8_t> Encoded(const ColumnSegment& s, size_t start,
                                      size_t count, int64_t lo, int64_t hi) {
    SelVector sel;
    sel.Reset(count);
    ColumnSegment::CodeRange cr = s.TranslateRange(lo, hi);
    s.EvalRange(start, count, cr, /*refine=*/false, &sel);
    std::vector<uint8_t> out(count);
    for (size_t i = 0; i < count; ++i) out[i] = sel.Test(i);
    return out;
  }

  void CheckAllWindows(const ColumnSegment& s,
                       const std::vector<int64_t>& vals, int64_t lo,
                       int64_t hi) {
    const size_t n = vals.size();
    const size_t windows[][2] = {
        {0, n}, {0, 1}, {n - 1, 1}, {n / 3, n / 2}, {1, n - 2}};
    for (const auto& w : windows) {
      ASSERT_EQ(Encoded(s, w[0], w[1], lo, hi), Naive(s, vals, w[0], w[1], lo, hi))
          << "window [" << w[0] << ", +" << w[1] << ") pred [" << lo << ","
          << hi << "] enc=" << SegEncodingName(s.encoding());
    }
  }

  DiskModel disk_;
  BufferPool pool_;
};

TEST_F(EncodedPredTest, DictEqualityAndOutOfDictionaryConstants) {
  // Sparse domain {10, 20, ..., 100}: dictionary-packed.
  std::vector<int64_t> vals;
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    vals.push_back(10 * (1 + rng.Uniform(0, 9)));
  }
  ColumnSegment s;
  s.Build(vals, &pool_);
  ASSERT_EQ(s.encoding(), SegEncoding::kDictPacked);

  // Equality on a stored value.
  CheckAllWindows(s, vals, 30, 30);
  // Equality on a constant inside [min,max] but NOT in the dictionary:
  // TranslateRange must prove `none` from the dictionary alone.
  ColumnSegment::CodeRange miss = s.TranslateRange(35, 35);
  EXPECT_TRUE(miss.none);
  CheckAllWindows(s, vals, 35, 35);
  // Range spanning only missing constants (31..39 contains no multiple of
  // 10): also a dictionary miss.
  EXPECT_TRUE(s.TranslateRange(31, 39).none);
  CheckAllWindows(s, vals, 31, 39);
  // Range below min / above max.
  EXPECT_TRUE(s.TranslateRange(-100, 5).none);
  EXPECT_TRUE(s.TranslateRange(101, 1 << 20).none);
  // Range bounds that are themselves out-of-dictionary still select the
  // stored values inside (15..45 -> {20, 30, 40}).
  CheckAllWindows(s, vals, 15, 45);
}

TEST_F(EncodedPredTest, AllPassProofSkipsEvaluation) {
  std::vector<int64_t> vals;
  Rng rng(11);
  for (int i = 0; i < 4000; ++i) vals.push_back(rng.Uniform(50, 150));
  ColumnSegment s;
  s.Build(vals, &pool_);
  ColumnSegment::CodeRange cr = s.TranslateRange(0, 1000);
  EXPECT_TRUE(cr.all);  // min/max proves every row matches
  CheckAllWindows(s, vals, 0, 1000);
  // Exactly [min, max] is also an all-pass.
  EXPECT_TRUE(s.TranslateRange(s.min_value(), s.max_value()).all);
}

TEST_F(EncodedPredTest, RleRunBoundaries) {
  // Long runs -> kDictRle. Windows deliberately start/end mid-run.
  std::vector<int64_t> vals;
  for (int g = 0; g < 8; ++g) {
    for (int i = 0; i < 700; ++i) vals.push_back(g * 5);
  }
  ColumnSegment s;
  s.Build(vals, &pool_);
  ASSERT_EQ(s.encoding(), SegEncoding::kDictRle);

  CheckAllWindows(s, vals, 10, 20);
  // Window fully inside one run.
  EXPECT_EQ(Encoded(s, 750, 100, 5, 5),
            Naive(s, vals, 750, 100, 5, 5));
  // Window straddling exactly one run boundary (run length 700).
  EXPECT_EQ(Encoded(s, 650, 100, 5, 5),
            Naive(s, vals, 650, 100, 5, 5));
  // Equality on an out-of-dictionary constant between stored values.
  EXPECT_TRUE(s.TranslateRange(7, 8).none);
  CheckAllWindows(s, vals, 7, 8);

  // Run-count accounting: evaluating the whole segment touches every run
  // once (8 runs), not one test per row.
  SelVector out;
  out.Reset(vals.size());
  ColumnSegment::CodeRange cr = s.TranslateRange(10, 20);
  ASSERT_FALSE(cr.none);
  ASSERT_FALSE(cr.all);
  EXPECT_EQ(s.EvalRange(0, vals.size(), cr, false, &out), 8u);
}

TEST_F(EncodedPredTest, RawPackedOffsetSpace) {
  // High-cardinality wide domain -> raw bitpack (offset space).
  std::vector<int64_t> vals;
  Rng rng(13);
  for (int i = 0; i < 6000; ++i) {
    vals.push_back(rng.Uniform(-1000000, 1000000));
  }
  ColumnSegment s;
  s.Build(vals, &pool_);
  ASSERT_EQ(s.encoding(), SegEncoding::kRawPacked);
  CheckAllWindows(s, vals, -5000, 5000);
  CheckAllWindows(s, vals, vals[17], vals[17]);  // equality on a stored value
  // Bounds partially outside [min,max] clamp into offset space.
  CheckAllWindows(s, vals, s.min_value() - 10, 0);
  CheckAllWindows(s, vals, 0, s.max_value() + 10);
}

TEST_F(EncodedPredTest, RefineAndsConjunctively) {
  std::vector<int64_t> a, b;
  Rng rng(17);
  for (int i = 0; i < 3000; ++i) {
    a.push_back(rng.Uniform(0, 100));
    b.push_back(rng.Uniform(0, 100));
  }
  ColumnSegment sa, sb;
  sa.Build(a, &pool_);
  sb.Build(b, &pool_);
  SelVector out;
  out.Reset(a.size());
  ColumnSegment::CodeRange ca = sa.TranslateRange(20, 60);
  ColumnSegment::CodeRange cb = sb.TranslateRange(40, 90);
  sa.EvalRange(0, a.size(), ca, /*refine=*/false, &out);
  sb.EvalRange(0, a.size(), cb, /*refine=*/true, &out);
  for (size_t i = 0; i < a.size(); ++i) {
    const bool want =
        (a[i] >= 20 && a[i] <= 60) && (b[i] >= 40 && b[i] <= 90);
    ASSERT_EQ(out.Test(i), want) << i;
  }
}

TEST_F(EncodedPredTest, RandomizedCrossCheckAllEncodings) {
  Rng rng(23);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<int64_t> vals;
    const int n = 500 + static_cast<int>(rng.Uniform(0, 4000));
    const int shape = trial % 3;
    int64_t v = rng.Uniform(-500, 500);
    for (int i = 0; i < n; ++i) {
      switch (shape) {
        case 0:  // runny (RLE)
          if (rng.Uniform(0, 99) < 2) v = rng.Uniform(-500, 500);
          vals.push_back(v);
          break;
        case 1:  // small domain (dict-packed)
          vals.push_back(rng.Uniform(0, 40) * 3);
          break;
        default:  // wide domain (raw)
          vals.push_back(rng.Uniform(-100000, 100000));
      }
    }
    ColumnSegment s;
    s.Build(vals, &pool_);
    for (int p = 0; p < 20; ++p) {
      int64_t lo = rng.Uniform(-1200, 1200) * (shape == 2 ? 100 : 1);
      int64_t hi = lo + rng.Uniform(0, 500);
      const size_t start = static_cast<size_t>(rng.Uniform(0, n - 1));
      const size_t count =
          1 + static_cast<size_t>(rng.Uniform(0, static_cast<int64_t>(
                                                     n - start - 1)));
      ASSERT_EQ(Encoded(s, start, count, lo, hi),
                Naive(s, vals, start, count, lo, hi))
          << "trial=" << trial << " pred=[" << lo << "," << hi << "] start="
          << start << " count=" << count
          << " enc=" << SegEncodingName(s.encoding());
    }
  }
}

TEST_F(EncodedPredTest, ScanGroupsMatchesNaiveAndCountsMetrics) {
  // End-to-end through ScanGroups on sorted data: whole groups eliminated
  // (segments_skipped), RLE runs tested per-run (runs_evaluated), and only
  // surviving batches decoded (rows_decoded < rows_scanned).
  const int kRows = 40000;
  std::vector<int64_t> key(kRows), val(kRows);
  Rng rng(29);
  for (int i = 0; i < kRows; ++i) {
    key[i] = i / 50;  // sorted, runny
    val[i] = rng.Uniform(0, 1000);
  }
  std::vector<int64_t> locs(kRows);
  for (int i = 0; i < kRows; ++i) locs[i] = i;
  CsiOptions opts;
  opts.rowgroup_size = 8192;  // several groups so elimination can show up
  ColumnStoreIndex csi(ColumnStoreIndex::Kind::kSecondary, 2, &pool_, opts);
  csi.BulkLoad({key, val}, locs);
  ASSERT_GT(csi.num_row_groups(), 1);

  // Selective predicate on the sorted key: touches a narrow key band.
  const int64_t klo = 100, khi = 140;
  std::vector<SegPredicate> preds{{0, klo, khi}};
  QueryMetrics m;
  int64_t got_rows = 0, got_sum = 0;
  csi.ScanGroups(0, csi.num_row_groups(), {0, 1}, preds,
                 [&](const ColumnBatch& b) {
                   got_rows += b.count;
                   for (int i = 0; i < b.count; ++i) got_sum += b.cols[1][i];
                   return true;
                 },
                 &m);
  int64_t want_rows = 0, want_sum = 0;
  for (int i = 0; i < kRows; ++i) {
    if (key[i] >= klo && key[i] <= khi) {
      ++want_rows;
      want_sum += val[i];
    }
  }
  EXPECT_EQ(got_rows, want_rows);
  EXPECT_EQ(got_sum, want_sum);
  EXPECT_GT(m.segments_skipped.load(), 0u);
  EXPECT_GT(m.runs_evaluated.load(), 0u);
  EXPECT_GT(m.rows_decoded.load(), 0u);
  EXPECT_LT(m.rows_decoded.load(), m.rows_scanned.load() + 1);
}

}  // namespace
}  // namespace hd
