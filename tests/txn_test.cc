// Lock manager and transaction tests, including the SI version store and
// concurrent mixed execution through the executor.
#include <gtest/gtest.h>

#include <thread>

#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "txn/transaction.h"
#include "workload/micro.h"
#include "workload/mixed_driver.h"
#include "workload/tpch.h"

namespace hd {
namespace {

TEST(LockCompatTest, Matrix) {
  using M = LockMode;
  EXPECT_TRUE(LockCompatible(M::kIS, M::kIS));
  EXPECT_TRUE(LockCompatible(M::kIS, M::kIX));
  EXPECT_TRUE(LockCompatible(M::kIS, M::kS));
  EXPECT_FALSE(LockCompatible(M::kIS, M::kX));
  EXPECT_TRUE(LockCompatible(M::kIX, M::kIX));
  EXPECT_FALSE(LockCompatible(M::kIX, M::kS));
  EXPECT_TRUE(LockCompatible(M::kS, M::kS));
  EXPECT_FALSE(LockCompatible(M::kS, M::kX));
  EXPECT_FALSE(LockCompatible(M::kX, M::kS));
}

TEST(LockManagerTest, GrantAndRelease) {
  LockManager lm;
  LockResource r{LockManager::HashTable("t"), 5};
  ASSERT_TRUE(lm.Acquire(1, r, LockMode::kX, 50).ok());
  EXPECT_EQ(lm.GrantedCount(r), 1);
  lm.Release(1, r);
  ASSERT_TRUE(lm.Acquire(2, r, LockMode::kX, 50).ok());
  lm.ReleaseAll(2);
  EXPECT_EQ(lm.GrantedCount(r), 0);
}

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm;
  LockResource r{LockManager::HashTable("t"), 1};
  ASSERT_TRUE(lm.Acquire(1, r, LockMode::kS, 50).ok());
  ASSERT_TRUE(lm.Acquire(2, r, LockMode::kS, 50).ok());
  EXPECT_EQ(lm.GrantedCount(r), 2);
}

TEST(LockManagerTest, ConflictTimesOut) {
  LockManager lm;
  LockResource r{LockManager::HashTable("t"), 1};
  ASSERT_TRUE(lm.Acquire(1, r, LockMode::kX, 50).ok());
  Status s = lm.Acquire(2, r, LockMode::kX, 50);
  EXPECT_TRUE(s.IsAborted());
}

TEST(LockManagerTest, ReacquireIsIdempotent) {
  LockManager lm;
  LockResource r{LockManager::HashTable("t"), 1};
  ASSERT_TRUE(lm.Acquire(1, r, LockMode::kX, 50).ok());
  ASSERT_TRUE(lm.Acquire(1, r, LockMode::kX, 50).ok());
  ASSERT_TRUE(lm.Acquire(1, r, LockMode::kS, 50).ok());  // weaker: no-op
}

TEST(LockManagerTest, UpgradeSToX) {
  LockManager lm;
  LockResource r{LockManager::HashTable("t"), 1};
  ASSERT_TRUE(lm.Acquire(1, r, LockMode::kS, 50).ok());
  ASSERT_TRUE(lm.Acquire(1, r, LockMode::kX, 50).ok());
  // Another S must now fail.
  EXPECT_TRUE(lm.Acquire(2, r, LockMode::kS, 50).IsAborted());
}

TEST(LockManagerTest, BlockedWaiterWakesOnRelease) {
  LockManager lm;
  LockResource r{LockManager::HashTable("t"), 1};
  ASSERT_TRUE(lm.Acquire(1, r, LockMode::kX, 50).ok());
  std::thread t([&] {
    EXPECT_TRUE(lm.Acquire(2, r, LockMode::kX, 2000).ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  lm.ReleaseAll(1);
  t.join();
}

TEST(LockManagerTest, FairnessReaderNotStarved) {
  // A waiting S behind an X must be granted before later IX churn.
  LockManager lm;
  LockResource r{LockManager::HashTable("t"), LockResource::kTableResource};
  ASSERT_TRUE(lm.Acquire(1, r, LockMode::kIX, 50).ok());
  std::atomic<bool> s_granted{false};
  std::thread reader([&] {
    EXPECT_TRUE(lm.Acquire(2, r, LockMode::kS, 3000).ok());
    s_granted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // Churn IX from other transactions; they must queue behind the S waiter.
  Status s3 = lm.Acquire(3, r, LockMode::kIX, 30);
  EXPECT_TRUE(s3.IsAborted());  // blocked behind the S waiter, times out
  lm.ReleaseAll(1);
  reader.join();
  EXPECT_TRUE(s_granted);
}

TEST(TransactionTest, BeginCommitReleasesLocks) {
  TransactionManager tm;
  auto t1 = tm.Begin(IsolationLevel::kReadCommitted);
  LockResource r{LockManager::HashTable("t"), 9};
  ASSERT_TRUE(tm.locks()->Acquire(t1->id(), r, LockMode::kX, 50).ok());
  tm.Commit(t1.get());
  auto t2 = tm.Begin(IsolationLevel::kReadCommitted);
  EXPECT_TRUE(tm.locks()->Acquire(t2->id(), r, LockMode::kX, 50).ok());
  tm.Commit(t2.get());
}

TEST(TransactionTest, VersionChains) {
  TransactionManager tm;
  const uint64_t th = LockManager::HashTable("t");
  auto reader = tm.Begin(IsolationLevel::kSnapshot);
  const uint64_t snap = reader->snapshot_ts();
  // Writer updates row 5 twice after the snapshot.
  auto w1 = tm.Begin(IsolationLevel::kReadCommitted);
  tm.NoteVersion(th, 5);
  tm.Commit(w1.get());
  auto w2 = tm.Begin(IsolationLevel::kReadCommitted);
  tm.NoteVersion(th, 5);
  tm.Commit(w2.get());
  EXPECT_EQ(tm.VersionChainLength(th, 5, snap), 2);
  EXPECT_EQ(tm.VersionChainLength(th, 6, snap), 0);
  // A fresh snapshot sees no newer versions.
  auto reader2 = tm.Begin(IsolationLevel::kSnapshot);
  EXPECT_EQ(tm.VersionChainLength(th, 5, reader2->snapshot_ts()), 0);
  tm.Commit(reader.get());
  tm.Commit(reader2.get());
  tm.GarbageCollect();
  EXPECT_EQ(tm.version_count(), 0u);
}

TEST(TransactionTest, GcKeepsVersionsForActiveSnapshots) {
  TransactionManager tm;
  const uint64_t th = LockManager::HashTable("t");
  auto reader = tm.Begin(IsolationLevel::kSnapshot);
  auto w = tm.Begin(IsolationLevel::kReadCommitted);
  tm.NoteVersion(th, 1);
  tm.Commit(w.get());
  tm.GarbageCollect();
  EXPECT_GT(tm.version_count(), 0u);  // reader still needs them
  tm.Commit(reader.get());
  tm.GarbageCollect();
  EXPECT_EQ(tm.version_count(), 0u);
}

// ---------------- executor under transactions ----------------

TEST(TxnExecTest, UpdateConflictAborts) {
  Database db;
  MicroOptions mo;
  mo.rows = 1000;
  mo.max_value = 100;
  MakeUniformIntTable(&db, "t", 2, mo);
  TransactionManager tm;
  Optimizer opt(&db);
  Configuration cfg = Configuration::FromCatalog(db);

  Query upd;
  upd.kind = Query::Kind::kUpdate;
  upd.base.table = "t";
  upd.base.preds = {Pred::Lt(0, Value::Int64(200))};
  upd.sets = {UpdateSet::Add(1, 1.0)};

  auto t1 = tm.Begin(IsolationLevel::kReadCommitted);
  {
    ExecContext ctx;
    ctx.db = &db;
    ctx.txns = &tm;
    ctx.txn = t1.get();
    ctx.lock_timeout_ms = 30;
    Executor ex(ctx);
    QueryResult r = ex.Execute(upd, opt.Plan(upd, cfg, {})->plan);
    ASSERT_TRUE(r.ok()) << r.status.ToString();
  }
  // A second txn updating the same rows must time out.
  auto t2 = tm.Begin(IsolationLevel::kReadCommitted);
  {
    ExecContext ctx;
    ctx.db = &db;
    ctx.txns = &tm;
    ctx.txn = t2.get();
    ctx.lock_timeout_ms = 30;
    Executor ex(ctx);
    QueryResult r = ex.Execute(upd, opt.Plan(upd, cfg, {})->plan);
    EXPECT_TRUE(r.status.IsAborted());
  }
  tm.Abort(t2.get());
  tm.Commit(t1.get());
}

TEST(TxnExecTest, MixedDriverRunsCleanly) {
  Database db;
  TpchOptions to;
  to.rows = 50000;
  Table* t = MakeLineitem(&db, "li", to);
  ASSERT_TRUE(t->SetPrimary(PrimaryKind::kBTree,
                            {LineitemCols::kOrderKey,
                             LineitemCols::kLineNumber}).ok());
  ASSERT_TRUE(
      t->CreateSecondaryBTree("ix_ship", {LineitemCols::kShipDate}, {}).ok());
  TransactionManager tm;
  MixedOptions mo;
  mo.threads = 4;
  mo.total_ops = 120;
  OpGenerator gen = [](int, Rng* rng) {
    const int32_t d = static_cast<int32_t>(
        rng->Uniform(kTpchShipDateLo, kTpchShipDateHi - 3));
    if (rng->Flip(0.2)) {
      Query q = TpchQ5("li", d);
      q.id = "scan";
      return q;
    }
    Query q = TpchQ4("li", 5, d);
    q.id = "update";
    return q;
  };
  MixedResult r = RunMixedWorkload(&db, &tm, gen, mo);
  uint64_t total = 0;
  for (auto& [type, st] : r.per_type) total += st.count;
  EXPECT_EQ(total, 120u);
  // Data integrity: the table is still fully consistent.
  EXPECT_EQ(t->num_rows(), 50000u);
}

TEST(TxnExecTest, SnapshotReadersSkipLocks) {
  Database db;
  MicroOptions mo;
  mo.rows = 10000;
  mo.max_value = 100;
  MakeUniformIntTable(&db, "t", 2, mo);
  TransactionManager tm;
  Optimizer opt(&db);
  Configuration cfg = Configuration::FromCatalog(db);

  // Writer holds X locks on some rows.
  Query upd;
  upd.kind = Query::Kind::kUpdate;
  upd.base.table = "t";
  upd.base.preds = {Pred::Eq(0, Value::Int64(50))};
  upd.sets = {UpdateSet::Add(1, 1.0)};
  auto w = tm.Begin(IsolationLevel::kReadCommitted);
  {
    ExecContext ctx;
    ctx.db = &db;
    ctx.txns = &tm;
    ctx.txn = w.get();
    Executor ex(ctx);
    ASSERT_TRUE(ex.Execute(upd, opt.Plan(upd, cfg, {})->plan).ok());
  }
  // An SI reader scans everything without blocking.
  auto r = tm.Begin(IsolationLevel::kSnapshot);
  {
    Query scan = MicroQ1("t", 1.0, 100);
    ExecContext ctx;
    ctx.db = &db;
    ctx.txns = &tm;
    ctx.txn = r.get();
    ctx.lock_timeout_ms = 30;
    Executor ex(ctx);
    QueryResult res = ex.Execute(scan, opt.Plan(scan, cfg, {})->plan);
    EXPECT_TRUE(res.ok()) << res.status.ToString();
  }
  tm.Commit(w.get());
  tm.Commit(r.get());
}

}  // namespace
}  // namespace hd
