// Property tests: randomized queries and DML sequences must behave
// identically across every physical design, and engine invariants must
// hold under randomized mutation.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "workload/micro.h"

namespace hd {
namespace {

QueryResult RunQ(Database* db, const Query& q, int max_dop = 2) {
  Optimizer opt(db);
  auto plan = opt.Plan(q, Configuration::FromCatalog(*db), {});
  EXPECT_TRUE(plan.ok());
  ExecContext ctx;
  ctx.db = db;
  ctx.max_dop = max_dop;
  Executor ex(ctx);
  QueryResult r = ex.Execute(q, plan->plan);
  EXPECT_TRUE(r.ok()) << r.status.ToString();
  return r;
}

/// Generate a random single-table query over a 3-int-column table.
Query RandomQuery(Rng* rng, int64_t maxv) {
  Query q;
  q.id = "rand";
  q.base.table = "t";
  const int npred = static_cast<int>(rng->Uniform(0, 2));
  for (int p = 0; p < npred; ++p) {
    const int col = static_cast<int>(rng->Uniform(0, 2));
    const int64_t a = rng->Uniform(0, maxv);
    const int64_t b = rng->Uniform(0, maxv);
    switch (rng->Uniform(0, 3)) {
      case 0: q.base.preds.push_back(Pred::Lt(col, Value::Int64(a))); break;
      case 1: q.base.preds.push_back(Pred::Ge(col, Value::Int64(a))); break;
      case 2:
        q.base.preds.push_back(
            Pred::Between(col, Value::Int64(std::min(a, b)),
                          Value::Int64(std::max(a, b))));
        break;
      default: q.base.preds.push_back(Pred::Eq(col, Value::Int64(a % 50)));
    }
  }
  if (rng->Flip(0.5)) {
    q.aggs = {AggSpec::Sum(Expr::Col(0, 1), "s"), AggSpec::CountStar(),
              AggSpec::Min(Expr::Col(0, 2)), AggSpec::Max(Expr::Col(0, 0))};
    if (rng->Flip(0.4)) {
      q.group_by = {ColRef{0, static_cast<int>(rng->Uniform(0, 2))}};
    }
  } else {
    q.select_cols = {ColRef{0, 0}, ColRef{0, 2}};
    if (rng->Flip(0.5)) q.order_by = {ColRef{0, 1}};
    if (rng->Flip(0.3)) q.limit = rng->Uniform(1, 100);
  }
  return q;
}

/// Canonical comparable form of a result (sorted rows as strings).
std::multiset<std::string> Canon(const QueryResult& r) {
  std::multiset<std::string> out;
  for (const auto& row : r.rows) {
    std::string s;
    for (const auto& v : row) s += v.ToString() + "|";
    out.insert(s);
  }
  return out;
}

class CrossDesignProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrossDesignProperty, RandomQueriesAgreeAcrossDesigns) {
  const uint64_t seed = GetParam();
  const int64_t maxv = 5000;
  Rng rng(seed);

  // Same data under three physical designs.
  Database db;
  MicroOptions mo;
  mo.rows = 30000;
  mo.max_value = maxv;
  mo.seed = seed;
  Table* heap = MakeUniformIntTable(&db, "t", 3, mo);
  ASSERT_NE(heap, nullptr);

  std::vector<Query> queries;
  for (int i = 0; i < 12; ++i) queries.push_back(RandomQuery(&rng, maxv));

  std::vector<std::vector<std::multiset<std::string>>> results;
  std::vector<std::vector<uint64_t>> counts;
  auto run_all = [&]() {
    std::vector<std::multiset<std::string>> res;
    std::vector<uint64_t> cnt;
    for (const auto& q : queries) {
      QueryResult r = RunQ(&db, q);
      res.push_back(Canon(r));
      cnt.push_back(r.row_count);
    }
    results.push_back(std::move(res));
    counts.push_back(std::move(cnt));
  };

  run_all();  // heap
  ASSERT_TRUE(heap->SetPrimary(PrimaryKind::kBTree, {0}).ok());
  ASSERT_TRUE(heap->CreateSecondaryColumnStore("csi").ok());
  ASSERT_TRUE(heap->CreateSecondaryBTree("ix12", {1}, {2}).ok());
  run_all();  // btree + csi + secondary
  ASSERT_TRUE(heap->SetPrimary(PrimaryKind::kColumnStore).ok());
  run_all();  // primary columnstore

  for (size_t d = 1; d < results.size(); ++d) {
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(counts[0][i], counts[d][i])
          << "design " << d << " query " << i << " seed " << seed;
      // Content comparison is only meaningful when the result is
      // deterministic: aggregates always are; projections are only when
      // no LIMIT truncates an arbitrary (or tie-broken) subset and the
      // whole result was materialized.
      const bool deterministic =
          !queries[i].aggs.empty() ||
          (queries[i].limit < 0 && counts[0][i] == results[0][i].size());
      if (deterministic) {
        EXPECT_EQ(results[0][i], results[d][i])
            << "design " << d << " query " << i << " seed " << seed;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossDesignProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

class DmlConsistencyProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DmlConsistencyProperty, RandomDmlKeepsIndexesConsistent) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  Database db;
  MicroOptions mo;
  mo.rows = 5000;
  mo.max_value = 500;
  mo.seed = seed;
  Table* t = MakeUniformIntTable(&db, "t", 3, mo);
  ASSERT_TRUE(t->SetPrimary(PrimaryKind::kBTree, {0}).ok());
  ASSERT_TRUE(t->CreateSecondaryBTree("ix", {1}, {2}).ok());
  ASSERT_TRUE(t->CreateSecondaryColumnStore("csi").ok());

  // Reference state: multiset of (col0, col1, col2).
  std::multiset<std::array<int64_t, 3>> ref;
  t->ScanAll(
      [&](int64_t, const int64_t* row) {
        ref.insert({row[0], row[1], row[2]});
        return true;
      },
      nullptr);

  for (int step = 0; step < 30; ++step) {
    const int64_t v = rng.Uniform(0, 500);
    const int op = static_cast<int>(rng.Uniform(0, 2));
    if (op == 0) {
      // Delete all rows with col1 == v.
      Query d;
      d.kind = Query::Kind::kDelete;
      d.base.table = "t";
      d.base.preds = {Pred::Eq(1, Value::Int64(v))};
      RunQ(&db, d);
      for (auto it = ref.begin(); it != ref.end();) {
        it = (*it)[1] == v ? ref.erase(it) : std::next(it);
      }
    } else if (op == 1) {
      // Update col2 += 7 for col1 == v.
      Query u;
      u.kind = Query::Kind::kUpdate;
      u.base.table = "t";
      u.base.preds = {Pred::Eq(1, Value::Int64(v))};
      u.sets = {UpdateSet::Add(2, 7)};
      RunQ(&db, u);
      std::multiset<std::array<int64_t, 3>> next;
      for (const auto& r : ref) {
        next.insert(r[1] == v ? std::array<int64_t, 3>{r[0], r[1], r[2] + 7}
                              : r);
      }
      ref = std::move(next);
    } else {
      // Insert a few rows.
      Query ins;
      ins.kind = Query::Kind::kInsert;
      ins.base.table = "t";
      for (int k = 0; k < 3; ++k) {
        const int64_t a = rng.Uniform(0, 500), b = rng.Uniform(0, 500),
                      c = rng.Uniform(0, 500);
        ins.insert_rows.push_back(
            {Value::Int64(a), Value::Int64(b), Value::Int64(c)});
        ref.insert({a, b, c});
      }
      RunQ(&db, ins);
    }
  }

  // The primary and all secondary structures must agree with the
  // reference, via three access paths.
  auto check_counts = [&](const char* which, const AccessPath::Kind kind,
                          const std::string& index) {
    Query q;
    q.base.table = "t";
    q.aggs = {AggSpec::CountStar(), AggSpec::Sum(Expr::Col(0, 2), "s2")};
    PhysicalPlan p;
    p.base.kind = kind;
    p.base.index_name = index;
    p.agg = AggMethod::kHash;
    ExecContext ctx;
    ctx.db = &db;
    Executor ex(ctx);
    QueryResult r = ex.Execute(q, p);
    ASSERT_TRUE(r.ok()) << which;
    int64_t ref_count = static_cast<int64_t>(ref.size());
    int64_t ref_sum = 0;
    for (const auto& e : ref) ref_sum += e[2];
    EXPECT_EQ(r.rows[0][0].i64(), ref_count) << which << " seed " << seed;
    EXPECT_EQ(r.rows[0][1].i64(), ref_sum) << which << " seed " << seed;
  };
  check_counts("primary btree", AccessPath::Kind::kBTreeFullScan, "");
  check_counts("secondary csi", AccessPath::Kind::kCsiScan, "csi");
  check_counts("secondary btree", AccessPath::Kind::kBTreeRange, "ix");
}

INSTANTIATE_TEST_SUITE_P(Seeds, DmlConsistencyProperty,
                         ::testing::Values(7, 19, 31, 43));

}  // namespace
}  // namespace hd
