// Tests for the process-wide telemetry registry (src/common/telemetry.h):
// histogram accuracy against exact quantiles, sharded counters and delta
// gauges under concurrency, snapshot-vs-writer races (exercised under
// TSan in CI), the background JSONL sampler, and the Prometheus writer.
#include "common/telemetry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "common/failpoint.h"

namespace hd {
namespace {

// ---------------------------------------------------------------------
// Histogram bucket scheme.
// ---------------------------------------------------------------------

TEST(HistogramBuckets, IndexAndBoundsAgree) {
  // Every probed value must land in a bucket whose [lo, hi) contains it.
  std::vector<uint64_t> probes = {0, 1, 2, 31, 32, 33, 63, 64, 65, 100,
                                  1023, 1024, 4096, 1u << 20, 123456789};
  probes.push_back(uint64_t{1} << 40);
  probes.push_back(~uint64_t{0});
  for (uint64_t v : probes) {
    const uint32_t idx = THistogram::BucketIndex(v);
    ASSERT_LT(idx, static_cast<uint32_t>(THistogram::kNumBuckets)) << v;
    uint64_t lo = 0, hi = 0;
    THistogram::BucketBounds(idx, &lo, &hi);
    EXPECT_LE(lo, v) << "bucket " << idx;
    if (hi != 0) EXPECT_LT(v, hi) << "bucket " << idx;  // hi==0: top overflow
  }
}

TEST(HistogramBuckets, RelativeWidthBound) {
  // The error bound rests on width/lower <= 1/32 past the unit region.
  for (uint32_t idx = 0; idx < THistogram::kNumBuckets; ++idx) {
    uint64_t lo = 0, hi = 0;
    THistogram::BucketBounds(idx, &lo, &hi);
    if (lo < THistogram::kSubBuckets) {
      EXPECT_EQ(hi, lo + 1) << "unit bucket " << idx;
    } else if (hi > lo) {
      EXPECT_LE(hi - lo, lo / THistogram::kSubBuckets + 1) << "bucket " << idx;
    }
  }
}

TEST(Histogram, QuantilesTrackExactWithinDocumentedBound) {
  // A long-tailed deterministic distribution, like real latencies.
  std::mt19937_64 rng(7);
  std::vector<int64_t> values;
  values.reserve(200000);
  THistogram h;
  for (int i = 0; i < 200000; ++i) {
    // Mix of a tight body and a 1% heavy tail.
    int64_t v = (i % 100 == 0) ? static_cast<int64_t>(rng() % 5'000'000)
                               : static_cast<int64_t>(1000 + rng() % 20000);
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  HistSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, values.size());
  for (double p : {0.5, 0.9, 0.95, 0.99, 0.999}) {
    const double exact = static_cast<double>(
        values[std::min(values.size() - 1,
                        static_cast<size_t>(values.size() * p))]);
    const double est = snap.Quantile(p);
    // Documented bound: |est - exact| <= exact/32 + 1, with slack for the
    // rank falling on a bucket boundary (one bucket width either side).
    EXPECT_NEAR(est, exact, exact / 16 + 2)
        << "p=" << p << " exact=" << exact << " est=" << est;
  }
}

TEST(Histogram, MeanAndEdgeCases) {
  THistogram h;
  EXPECT_EQ(h.Snapshot().Quantile(0.5), 0);  // empty
  h.Record(0);
  h.Record(-5);  // clamped to 0
  h.Record(10);
  HistSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.Mean(), 10.0 / 3);
  // Midpoint estimator: the exact p0 is 0, the estimate must stay within
  // the documented +1 absolute slack.
  EXPECT_LE(s.Quantile(0.0), 1.0);
}

// ---------------------------------------------------------------------
// Counters / gauges.
// ---------------------------------------------------------------------

TEST(Counter, ConcurrentAddsAllCounted) {
  TCounter c;
  constexpr int kThreads = 8;
  constexpr int kAdds = 50000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.Add(1);
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kAdds);
}

TEST(Gauge, DeltaUpdatesAggregate) {
  TGauge g;
  g.Add(100);
  g.Add(-30);
  g.Add(7);
  EXPECT_EQ(g.Value(), 77);
  g.Reset();
  EXPECT_EQ(g.Value(), 0);
}

TEST(Registry, GetOrCreateIsStable) {
  TCounter* a = Telemetry::Instance().Counter("test.stable");
  TCounter* b = Telemetry::Instance().Counter("test.stable");
  EXPECT_EQ(a, b);
  EXPECT_NE(Telemetry::Instance().Histogram("test.stable_h"), nullptr);
  EXPECT_NE(Telemetry::Instance().Gauge("test.stable_g"), nullptr);
}

// Snapshot racing live writers: run under TSan in CI. The assertion is
// weak (snapshots are monotonic in the counter), the point is the race.
TEST(Registry, SnapshotVsConcurrentWriters) {
  TCounter* c = Telemetry::Instance().Counter("test.race_counter");
  THistogram* h = Telemetry::Instance().Histogram("test.race_hist");
  TGauge* g = Telemetry::Instance().Gauge("test.race_gauge");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        c->Add(1);
        h->Record(12345);
        g->Add(1);
        g->Add(-1);
      }
    });
  }
  uint64_t last = 0;
  for (int i = 0; i < 50; ++i) {
    TelemetrySnapshot s = Telemetry::Instance().Snapshot();
    const uint64_t now = s.counters["test.race_counter"];
    EXPECT_GE(now, last);
    last = now;
    const auto& hs = s.histograms["test.race_hist"];
    uint64_t bucket_total = 0;
    for (const auto& [idx, n] : hs.buckets) bucket_total += n;
    // count and buckets are read independently; bucket sum may trail or
    // lead slightly but never exceeds a later count read.
    EXPECT_LE(hs.count, c->Value());
    EXPECT_LE(bucket_total, c->Value() + 4);
  }
  stop.store(true);
  for (auto& t : writers) t.join();
}

// ---------------------------------------------------------------------
// Exposition: Prometheus text format and JSONL.
// ---------------------------------------------------------------------

TEST(Exposition, PrometheusIsWellFormed) {
  Telemetry::Instance().Counter("test.prom_counter")->Add(3);
  Telemetry::Instance().Gauge("test.prom_gauge")->Set(-7);
  Telemetry::Instance().Histogram("test.prom_hist")->Record(1000);
  const std::string text = Telemetry::Instance().Snapshot().ToPrometheus();
  ASSERT_FALSE(text.empty());
  EXPECT_NE(text.find("hd_test_prom_counter_total 3"), std::string::npos);
  EXPECT_NE(text.find("hd_test_prom_gauge -7"), std::string::npos);
  EXPECT_NE(text.find("hd_test_prom_hist{quantile=\"0.5\"}"),
            std::string::npos);
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());  // no blank lines in the exposition
    if (line[0] == '#') {
      EXPECT_EQ(line.rfind("# TYPE ", 0), 0u) << line;
      continue;
    }
    // Sample lines: metric[{labels}] <space> value.
    const size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    const std::string name = line.substr(0, sp);
    const std::string value = line.substr(sp + 1);
    EXPECT_EQ(name.rfind("hd_", 0), 0u) << line;
    for (char ch : name.substr(0, name.find('{'))) {
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(ch)) || ch == '_')
          << line;
    }
    EXPECT_NE(value.find_first_of("0123456789"), std::string::npos) << line;
  }
}

TEST(Exposition, JsonIsSingleLineWithSchema) {
  Telemetry::Instance().Counter("test.json_counter")->Add(1);
  const std::string j = Telemetry::Instance().Snapshot().ToJson();
  EXPECT_EQ(j.find('\n'), std::string::npos);
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
  EXPECT_NE(j.find("\"schema\": \"hd-stats/1\""), std::string::npos);
  EXPECT_NE(j.find("\"test.json_counter\": "), std::string::npos);
  EXPECT_NE(j.find("\"ts_ms\": "), std::string::npos);
}

// ---------------------------------------------------------------------
// Background sampler.
// ---------------------------------------------------------------------

std::string TempPath(const char* tag) {
  return testing::TempDir() + "/hd_sampler_" + tag + ".jsonl";
}

size_t CountJsonLines(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return 0;
  size_t n = 0;
  char buf[1 << 16];
  while (std::fgets(buf, sizeof buf, f) != nullptr) {
    EXPECT_EQ(buf[0], '{') << "line " << n;
    EXPECT_NE(std::string(buf).find("hd-stats/1"), std::string::npos);
    ++n;
  }
  std::fclose(f);
  return n;
}

TEST(Sampler, StartStopWritesSamples) {
  const std::string path = TempPath("basic");
  std::remove(path.c_str());
  TelemetrySampler s;
  ASSERT_TRUE(s.Start(path, 10).ok());
  EXPECT_TRUE(s.running());
  EXPECT_FALSE(s.Start(path, 10).ok());  // already running
  Telemetry::Instance().Counter("test.sampler_counter")->Add(5);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  s.Stop();
  EXPECT_FALSE(s.running());
  s.Stop();  // idempotent
  const size_t lines = CountJsonLines(path);
  EXPECT_GE(lines, 2u);  // several ticks plus the final snapshot
  EXPECT_EQ(lines, s.samples_written());
}

TEST(Sampler, RestartAppendsToSameFile) {
  const std::string path = TempPath("restart");
  std::remove(path.c_str());
  TelemetrySampler s;
  ASSERT_TRUE(s.Start(path, 5).ok());
  s.Stop();
  const size_t first = CountJsonLines(path);
  ASSERT_TRUE(s.Start(path, 5).ok());  // reusable after Stop
  s.Stop();
  EXPECT_GT(CountJsonLines(path), first);
}

TEST(Sampler, StopWithoutStartIsNoop) {
  TelemetrySampler s;
  s.Stop();
  EXPECT_FALSE(s.running());
  EXPECT_EQ(s.samples_written(), 0u);
}

TEST(Sampler, FailpointSkipsTickButKeepsSampling) {
  const std::string path = TempPath("failpoint");
  std::remove(path.c_str());
  TelemetrySampler s;
  {
    // Every 2nd tick's write fails; the sampler must absorb it.
    ScopedFailPoint fp("telemetry.sample",
                       FailSpec::EveryNth(2, Code::kIoError, "sink down"));
    ASSERT_TRUE(s.Start(path, 5).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    s.Stop();
  }
  EXPECT_GT(s.samples_written(), 0u);
  EXPECT_GT(s.samples_skipped(), 0u);
  EXPECT_EQ(CountJsonLines(path), s.samples_written());
}

}  // namespace
}  // namespace hd
