// Workload generator tests: schema shapes, determinism, query validity
// (every generated query must plan and execute).
#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "workload/ch.h"
#include "workload/customer.h"
#include "workload/micro.h"
#include "workload/tpcds.h"
#include "workload/tpch.h"

namespace hd {
namespace {

QueryResult MustRun(Database* db, const Query& q) {
  Optimizer opt(db);
  auto plan = opt.Plan(q, Configuration::FromCatalog(*db), {});
  EXPECT_TRUE(plan.ok()) << q.id << ": " << plan.status().ToString();
  ExecContext ctx;
  ctx.db = db;
  ctx.max_dop = 2;
  Executor ex(ctx);
  QueryResult r = ex.Execute(q, plan->plan);
  EXPECT_TRUE(r.ok()) << q.id << ": " << r.status.ToString();
  return r;
}

TEST(TpchGenTest, SchemaAndDeterminism) {
  Database db1, db2;
  TpchOptions to;
  to.rows = 20000;
  Table* a = MakeLineitem(&db1, "li", to);
  Table* b = MakeLineitem(&db2, "li", to);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->num_columns(), LineitemCols::kNumCols);
  EXPECT_EQ(a->num_rows(), 20000u);
  // Same seed => identical data.
  int64_t sum_a = 0, sum_b = 0;
  a->ScanAll([&](int64_t, const int64_t* r) { sum_a += r[0] + r[9]; return true; }, nullptr);
  b->ScanAll([&](int64_t, const int64_t* r) { sum_b += r[0] + r[9]; return true; }, nullptr);
  EXPECT_EQ(sum_a, sum_b);
}

TEST(TpchGenTest, Q4AndQ5Execute) {
  Database db;
  TpchOptions to;
  to.rows = 30000;
  MakeLineitem(&db, "li", to);
  QueryResult r5 = MustRun(&db, TpchQ5("li", kTpchShipDateLo + 100));
  ASSERT_EQ(r5.rows.size(), 1u);
  QueryResult r4 = MustRun(&db, TpchQ4("li", 3, kTpchShipDateLo + 100));
  EXPECT_LE(r4.affected_rows, 3u);
}

TEST(TpcdsGenTest, AllQueriesExecute) {
  Database db;
  TpcdsOptions to;
  to.fact_rows = 30000;
  to.num_queries = 97;
  GeneratedWorkload w = MakeTpcds(&db, to);
  EXPECT_EQ(w.queries.size(), 97u);
  EXPECT_GE(db.tables().size(), 10u);
  int executed = 0;
  for (const auto& q : w.queries) {
    MustRun(&db, q);
    ++executed;
  }
  EXPECT_EQ(executed, 97);
}

TEST(TpcdsGenTest, DimensionsHaveExpectedShapes) {
  Database db;
  TpcdsOptions to;
  to.fact_rows = 5000;
  MakeTpcds(&db, to);
  EXPECT_EQ(db.GetTable("item")->num_rows(), 2000u);
  EXPECT_EQ(db.GetTable("customer")->num_rows(), 10000u);
  EXPECT_GT(db.GetTable("date_dim")->num_rows(), 2000u);
  EXPECT_EQ(db.GetTable("store_sales")->num_rows(), 5000u);
  EXPECT_EQ(db.GetTable("web_sales")->num_rows(), 2500u);
}

TEST(CustomerGenTest, ProfilesMatchTable2QueryCounts) {
  const int expect_q[5] = {36, 40, 40, 24, 47};
  for (int c = 1; c <= 5; ++c) {
    EXPECT_EQ(CustProfile(c).num_queries, expect_q[c - 1]) << "cust" << c;
  }
  EXPECT_GT(CustProfile(5).min_joins, 12);  // the deep-join workload
}

TEST(CustomerGenTest, GeneratedQueriesExecute) {
  Database db;
  CustomerProfile p = CustProfile(4);
  GeneratedWorkload w = MakeCustomer(&db, p, 0.05);
  EXPECT_EQ(static_cast<int>(w.queries.size()), p.num_queries);
  for (const auto& q : w.queries) MustRun(&db, q);
}

TEST(ChGenTest, SchemaLoads) {
  Database db;
  ChOptions co;
  co.warehouses = 2;
  ChBenchmark ch(&db, co);
  EXPECT_EQ(db.GetTable("warehouse")->num_rows(), 2u);
  EXPECT_EQ(db.GetTable("stock")->num_rows(), 20000u);
  EXPECT_GT(db.GetTable("order_line")->num_rows(),
            db.GetTable("orders")->num_rows() * 4);
}

TEST(ChGenTest, AnalyticQueriesExecute) {
  Database db;
  ChOptions co;
  co.warehouses = 2;
  co.initial_orders_per_district = 50;
  ChBenchmark ch(&db, co);
  for (const auto& q : ch.AnalyticQueries(5)) MustRun(&db, q);
}

TEST(ChGenTest, TransactionsRunThroughDriver) {
  Database db;
  ChOptions co;
  co.warehouses = 2;
  co.initial_orders_per_district = 50;
  ChBenchmark ch(&db, co);
  TransactionManager tm;
  MixedOptions mo;
  mo.threads = 3;
  mo.total_ops = 60;
  MixedResult r = RunMixedTxnWorkload(&db, &tm, ch.MakeGenerator(), mo);
  uint64_t total = 0;
  bool has_neworder = false;
  for (auto& [type, st] : r.per_type) {
    total += st.count;
    has_neworder |= type == "NewOrder";
  }
  EXPECT_EQ(total, 60u);
  EXPECT_TRUE(has_neworder);
  // NewOrder inserts landed.
  EXPECT_GT(db.GetTable("orders")->num_rows(), 2u * 10 * 50);
}

TEST(MixedDriverTest, CountsAndLatencies) {
  Database db;
  MicroOptions mo;
  mo.rows = 5000;
  MakeUniformIntTable(&db, "t", 1, mo);
  TransactionManager tm;
  MixedOptions opts;
  opts.threads = 2;
  opts.total_ops = 50;
  OpGenerator gen = [](int, Rng*) {
    Query q = MicroQ1("t", 0.5, (1u << 31) - 1);
    q.id = "q";
    return q;
  };
  MixedResult r = RunMixedWorkload(&db, &tm, gen, opts);
  ASSERT_EQ(r.per_type.count("q"), 1u);
  EXPECT_EQ(r.per_type["q"].count, 50u);
  EXPECT_GT(r.per_type["q"].mean_ms(), 0.0);
  EXPECT_GE(r.per_type["q"].p95_ms(), r.per_type["q"].median_ms());
}

}  // namespace
}  // namespace hd
