// Tests for the shared work-stealing thread pool and its morsel-driven
// ParallelFor: every morsel runs exactly once, DOP acts as a concurrency
// cap, slots are exclusively owned, and nested loops cannot deadlock even
// when the pool is saturated.
#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace hd {
namespace {

TEST(ThreadPoolTest, EveryMorselRunsExactlyOnce) {
  constexpr uint64_t kMorsels = 1000;
  std::vector<std::atomic<int>> hits(kMorsels);
  for (auto& h : hits) h.store(0);
  MorselStats st = ThreadPool::Global().ParallelFor(
      kMorsels, 8, [&](int, uint64_t mi) { hits[mi].fetch_add(1); });
  EXPECT_EQ(st.scheduled, kMorsels);
  for (uint64_t i = 0; i < kMorsels; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "morsel " << i;
  }
}

TEST(ThreadPoolTest, SerialWhenSingleSlot) {
  // max_dop=1 must run inline on the caller, in order.
  std::vector<uint64_t> order;
  MorselStats st = ThreadPool::Global().ParallelFor(
      100, 1, [&](int slot, uint64_t mi) {
        EXPECT_EQ(slot, 0);
        order.push_back(mi);  // no synchronization: single participant
      });
  EXPECT_EQ(st.participants, 1);
  EXPECT_EQ(st.stolen, 0u);
  ASSERT_EQ(order.size(), 100u);
  for (uint64_t i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, DopCapHonoredUnderContention) {
  constexpr int kDop = 3;
  std::atomic<int> live{0};
  std::atomic<int> peak{0};
  ThreadPool::Global().ParallelFor(64, kDop, [&](int slot, uint64_t) {
    EXPECT_GE(slot, 0);
    EXPECT_LT(slot, kDop);
    int now = live.fetch_add(1) + 1;
    int p = peak.load();
    while (now > p && !peak.compare_exchange_weak(p, now)) {
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    live.fetch_sub(1);
  });
  EXPECT_LE(peak.load(), kDop);
  EXPECT_GE(peak.load(), 1);
}

TEST(ThreadPoolTest, SlotExclusivelyOwned) {
  // Per-slot accumulators need no synchronization; totals must still add
  // up even when morsels migrate between participants by stealing.
  constexpr uint64_t kMorsels = 500;
  constexpr int kDop = 4;
  struct alignas(64) Acc {
    uint64_t sum = 0;
  };
  std::vector<Acc> per_slot(kDop);
  MorselStats st = ThreadPool::Global().ParallelFor(
      kMorsels, kDop,
      [&](int slot, uint64_t mi) { per_slot[slot].sum += mi; });
  uint64_t total = 0;
  for (const auto& a : per_slot) total += a.sum;
  EXPECT_EQ(total, kMorsels * (kMorsels - 1) / 2);
  EXPECT_LE(st.participants, kDop);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // Outer morsels each run an inner loop. With a small pool this would
  // deadlock if a loop ever waited on pool capacity; the caller-participates
  // design must complete it regardless of pool size.
  std::atomic<uint64_t> inner_total{0};
  ThreadPool::Global().ParallelFor(8, 8, [&](int, uint64_t) {
    ThreadPool::Global().ParallelFor(
        16, 4, [&](int, uint64_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 8u * 16u);
}

TEST(ThreadPoolTest, DeeplyNestedOnTinyPool) {
  // A dedicated 1-thread pool: three nesting levels still complete because
  // every level's caller claims and drains unclaimed slots itself.
  ThreadPool tiny(1);
  std::atomic<uint64_t> count{0};
  tiny.ParallelFor(4, 4, [&](int, uint64_t) {
    tiny.ParallelFor(4, 4, [&](int, uint64_t) {
      tiny.ParallelFor(4, 4, [&](int, uint64_t) { count.fetch_add(1); });
    });
  });
  EXPECT_EQ(count.load(), 64u);
}

TEST(ThreadPoolTest, WorkStealingMovesMorselsBetweenSlots) {
  // Skewed morsel cost: slot ranges are contiguous, so the slow range's
  // tail should be stolen by participants that finished their own range.
  // Run a few rounds; stealing is scheduling-dependent but with a slow
  // first range and many cheap morsels it shows up reliably on any host
  // with a pool (even a time-sliced single core).
  uint64_t stolen = 0;
  for (int round = 0; round < 5 && stolen == 0; ++round) {
    MorselStats st = ThreadPool::Global().ParallelFor(
        256, 4, [&](int, uint64_t mi) {
          if (mi < 64) {  // first slot's range is 100x slower
            std::this_thread::sleep_for(std::chrono::microseconds(300));
          }
        });
    stolen += st.stolen;
  }
  EXPECT_GT(stolen, 0u);
}

TEST(ThreadPoolTest, ZeroMorselsIsNoop) {
  bool ran = false;
  MorselStats st =
      ThreadPool::Global().ParallelFor(0, 8, [&](int, uint64_t) { ran = true; });
  EXPECT_FALSE(ran);
  EXPECT_EQ(st.scheduled, 0u);
  EXPECT_EQ(st.participants, 0);
}

TEST(ThreadPoolTest, ManyConcurrentLoopsComplete) {
  // Completion under contention: several loops issued back-to-back share
  // the pool; each must see all of its own morsels exactly once.
  for (int it = 0; it < 20; ++it) {
    std::atomic<uint64_t> sum{0};
    ThreadPool::Global().ParallelFor(
        100, 8, [&](int, uint64_t mi) { sum.fetch_add(mi + 1); });
    ASSERT_EQ(sum.load(), 100u * 101u / 2);
  }
}

}  // namespace
}  // namespace hd
