// Query store tests (PR 10): statement fingerprints, the lock-sharded
// record ring, aggregates, slow log, hd-qlog/1 persistence, executor
// capture integration, and the capture → advisor round trip.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "core/advisor.h"
#include "exec/executor.h"
#include "exec/explain.h"
#include "obs/capture_ingest.h"
#include "obs/query_store.h"
#include "optimizer/optimizer.h"
#include "sql/parser.h"

namespace hd {
namespace {

// ---------------------------------------------------------------------
// Fingerprint normalization: the fingerprint must identify a statement
// *class*, not an individual statement instance.
// ---------------------------------------------------------------------

TEST(FingerprintTest, LiteralInsensitive) {
  // Numeric and string literals are stripped to `?` — the whole point of
  // workload compression by template.
  EXPECT_EQ(FingerprintSql("SELECT sum(revenue) FROM sales WHERE day < 5"),
            FingerprintSql("SELECT sum(revenue) FROM sales WHERE day < 900"));
  EXPECT_EQ(
      FingerprintSql("SELECT count(*) FROM sales WHERE region = 'east'"),
      FingerprintSql("SELECT count(*) FROM sales WHERE region = 'west'"));
}

TEST(FingerprintTest, CaseAndWhitespaceInsensitive) {
  EXPECT_EQ(FingerprintSql("select   sum(revenue)\n\tFROM sales"),
            FingerprintSql("SELECT SUM(REVENUE) FROM SALES"));
  EXPECT_EQ(NormalizeSql("select  a from t  where a <  5"),
            NormalizeSql("SELECT A FROM T WHERE A < 99"));
}

TEST(FingerprintTest, DistinctAcrossTableColumnOperator) {
  const uint64_t base = FingerprintSql("SELECT sum(a) FROM t WHERE b < 5");
  // Different table.
  EXPECT_NE(base, FingerprintSql("SELECT sum(a) FROM u WHERE b < 5"));
  // Different column.
  EXPECT_NE(base, FingerprintSql("SELECT sum(a) FROM t WHERE c < 5"));
  // Different operator.
  EXPECT_NE(base, FingerprintSql("SELECT sum(a) FROM t WHERE b > 5"));
  // Different aggregate.
  EXPECT_NE(base, FingerprintSql("SELECT count(a) FROM t WHERE b < 5"));
}

TEST(FingerprintTest, NormalizedTextShowsPlaceholders) {
  const std::string norm =
      NormalizeSql("SELECT day FROM sales WHERE region = 'east' AND day < 40");
  EXPECT_EQ(norm.find("east"), std::string::npos);
  EXPECT_EQ(norm.find("40"), std::string::npos);
  EXPECT_NE(norm.find("?"), std::string::npos);
  EXPECT_NE(norm.find("SALES"), std::string::npos);
}

TEST(FingerprintTest, HexRendering) {
  EXPECT_EQ(FingerprintHex(0), "0000000000000000");
  EXPECT_EQ(FingerprintHex(0xabcdef0123456789ull), "abcdef0123456789");
  EXPECT_EQ(FingerprintHex(0xabcdef0123456789ull).size(), 16u);
}

// ---------------------------------------------------------------------
// Store mechanics: ring retention, eviction, aggregates, slow log.
// ---------------------------------------------------------------------

QueryRecord MakeRec(const std::string& sql, double ms,
                    Code code = Code::kOk) {
  QueryRecord rec;
  rec.sql = sql;
  rec.norm = sql;  // tests use pre-normalized text
  rec.kind = "select";
  rec.code = code;
  rec.latency_ms = ms;
  rec.rows_out = 7;
  return rec;
}

TEST(QueryStoreTest, RecordAssignsSeqAndTimestamp) {
  QueryStore qs;
  qs.Record(MakeRec("SELECT A FROM T", 1.5));
  qs.Record(MakeRec("SELECT A FROM T", 2.5));
  EXPECT_EQ(qs.recorded(), 2u);
  auto recent = qs.Recent(10);
  ASSERT_EQ(recent.size(), 2u);
  // Newest first; seq is monotone; ts assigned.
  EXPECT_GT(recent[0].seq, recent[1].seq);
  EXPECT_GT(recent[0].ts_ms, 0u);
  EXPECT_NE(recent[0].fingerprint, 0u);
}

TEST(QueryStoreTest, ConcurrentWritersRespectCapacity) {
  QueryStoreOptions o;
  o.capacity = 16;
  QueryStore qs(o);
  constexpr int kThreads = 4, kPerThread = 200;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&qs, t] {
      for (int i = 0; i < kPerThread; ++i) {
        qs.Record(MakeRec("SELECT ? FROM T" + std::to_string(t), 0.1 + i));
      }
    });
  }
  for (auto& th : ts) th.join();
  const uint64_t total = kThreads * kPerThread;
  EXPECT_EQ(qs.recorded(), total);
  const auto recent = qs.Recent(1000);
  EXPECT_LE(recent.size(), 16u);
  EXPECT_GT(recent.size(), 0u);
  // Every record either stayed in the ring or was counted evicted.
  EXPECT_EQ(qs.evicted() + recent.size(), total);
  // FIFO per shard: the retained set is biased to the newest seqs; the
  // single newest record is always retained.
  uint64_t max_seq = 0;
  for (const auto& r : recent) max_seq = std::max(max_seq, r.seq);
  EXPECT_EQ(max_seq, total);
}

TEST(QueryStoreTest, FingerprintAggregates) {
  QueryStore qs;
  for (double ms : {1.0, 2.0, 3.0, 10.0}) {
    qs.Record(MakeRec("SELECT A FROM T WHERE B < ?", ms));
  }
  qs.Record(MakeRec("SELECT C FROM U", 5.0, Code::kInvalidArgument));
  auto fps = qs.Fingerprints();
  ASSERT_EQ(fps.size(), 2u);
  // Sorted by total time: the 16ms class first.
  EXPECT_EQ(fps[0].calls, 4u);
  EXPECT_EQ(fps[0].errors, 0u);
  EXPECT_DOUBLE_EQ(fps[0].total_ms, 16.0);
  EXPECT_DOUBLE_EQ(fps[0].min_ms, 1.0);
  EXPECT_DOUBLE_EQ(fps[0].max_ms, 10.0);
  EXPECT_GT(fps[0].p95_ms, 0.0);
  EXPECT_EQ(fps[0].rows_out, 4u * 7u);
  EXPECT_EQ(fps[1].calls, 1u);
  EXPECT_EQ(fps[1].errors, 1u);
}

TEST(QueryStoreTest, SlowLogThreshold) {
  QueryStoreOptions o;
  o.slow_query_ms = 5.0;
  QueryStore qs(o);
  qs.Record(MakeRec("FAST", 1.0));
  qs.Record(MakeRec("SLOW ONE", 9.0));
  qs.Record(MakeRec("SLOW TWO", 5.0));  // at threshold counts
  EXPECT_EQ(qs.slow_count(), 2u);
  auto slow = qs.Slow(10);
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_TRUE(slow[0].slow);
  EXPECT_EQ(slow[0].sql, "SLOW TWO");  // newest first
  EXPECT_EQ(slow[1].sql, "SLOW ONE");
  // Disabled by default: no record is flagged.
  QueryStore off;
  off.Record(MakeRec("ANY", 1e6));
  EXPECT_EQ(off.slow_count(), 0u);
}

TEST(QueryStoreTest, RenderSurfacesAreNonEmpty) {
  QueryStoreOptions o;
  o.slow_query_ms = 0;
  QueryStore qs(o);
  qs.Record(MakeRec("SELECT A FROM T", 1.0));
  EXPECT_NE(qs.RenderTop().find("SELECT A FROM T"), std::string::npos);
  EXPECT_NE(qs.RenderSlow().find("slow-query log"), std::string::npos);
  EXPECT_NE(qs.RenderFingerprints().find("fingerprint classes: 1"),
            std::string::npos);
}

// ---------------------------------------------------------------------
// hd-qlog/1 persistence: live append, export, and ingestion.
// ---------------------------------------------------------------------

TEST(QlogTest, JsonLineCarriesIdentityFields) {
  QueryRecord rec = MakeRec("SELECT A FROM T WHERE B = 'x'", 2.25);
  rec.seq = 3;
  rec.ts_ms = 1700000000000ull;
  rec.trace_id = 0xdeadbeef12345678ull;
  rec.fingerprint = 42;
  const std::string line = QueryStore::ToQlogJson(rec);
  EXPECT_NE(line.find("\"schema\":\"hd-qlog/1\""), std::string::npos);
  EXPECT_NE(line.find("\"trace\":\"deadbeef12345678\""), std::string::npos);
  EXPECT_NE(line.find("\"fp\":\"000000000000002a\""), std::string::npos);
  EXPECT_NE(line.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(line.find("\"latency_ms\":2.250"), std::string::npos);
  // Embedded quotes must be escaped.
  EXPECT_NE(line.find("B = 'x'"), std::string::npos);
}

TEST(QlogTest, ExportRoundTripsThroughLoadQlog) {
  QueryStore qs;
  // Three calls of one class (different literals pre-normalized away),
  // one of another, one failure that the loader must skip.
  for (int i = 0; i < 3; ++i) {
    QueryRecord r = MakeRec("SELECT SUM(REVENUE) FROM SALES WHERE DAY < ?",
                            1.0 + i);
    r.sql = "SELECT sum(revenue) FROM sales WHERE day < " + std::to_string(i);
    qs.Record(std::move(r));
  }
  qs.Record(MakeRec("SELECT COUNT(*) FROM SALES", 2.0));
  qs.Record(MakeRec("SELEC BOGUS", 0.1, Code::kInvalidArgument));

  const std::string path = "qlog_export_test.jsonl";
  ASSERT_TRUE(qs.ExportQlog(path).ok());
  auto classes = LoadQlog(path);
  std::remove(path.c_str());
  ASSERT_TRUE(classes.ok()) << classes.status().ToString();
  ASSERT_EQ(classes->size(), 2u);  // failure skipped
  EXPECT_EQ((*classes)[0].calls, 3u);
  EXPECT_EQ((*classes)[0].sql,
            "SELECT sum(revenue) FROM sales WHERE day < 0");  // first seen
  EXPECT_EQ((*classes)[1].calls, 1u);
}

TEST(QlogTest, ExportedTimestampsAreMonotone) {
  QueryStore qs;
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&qs] {
      for (int i = 0; i < 50; ++i) qs.Record(MakeRec("SELECT A FROM T", 0.1));
    });
  }
  for (auto& th : ts) th.join();
  const std::string path = "qlog_monotone_test.jsonl";
  ASSERT_TRUE(qs.ExportQlog(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[4096];
  uint64_t last_ts = 0, last_seq = 0;
  int lines = 0;
  while (std::fgets(buf, sizeof buf, f) != nullptr) {
    ++lines;
    const char* tp = std::strstr(buf, "\"ts_ms\":");
    const char* sp = std::strstr(buf, "\"seq\":");
    ASSERT_NE(tp, nullptr);
    ASSERT_NE(sp, nullptr);
    const uint64_t ts_ms = std::strtoull(tp + 8, nullptr, 10);
    const uint64_t seq = std::strtoull(sp + 6, nullptr, 10);
    EXPECT_GE(ts_ms, last_ts);
    EXPECT_GT(seq, last_seq);
    last_ts = ts_ms;
    last_seq = seq;
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(lines, 200);
}

TEST(QlogTest, LiveQlogAppendsOneLinePerRecord) {
  const std::string path = "qlog_live_test.jsonl";
  std::remove(path.c_str());
  {
    QueryStoreOptions o;
    o.qlog_path = path;
    QueryStore qs(o);
    qs.Record(MakeRec("SELECT A FROM T", 1.0));
    qs.Record(MakeRec("SELECT B FROM T", 2.0));
    qs.Flush();
  }
  auto classes = LoadQlog(path);
  std::remove(path.c_str());
  ASSERT_TRUE(classes.ok()) << classes.status().ToString();
  EXPECT_EQ(classes->size(), 2u);
}

TEST(QlogTest, LoaderRejectsWrongSchemaAndGarbage) {
  const std::string path = "qlog_bad_test.jsonl";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("{\"schema\":\"hd-stats/1\",\"sql\":\"SELECT 1\"}\n", f);
  std::fclose(f);
  EXPECT_FALSE(LoadQlog(path).ok());
  f = std::fopen(path.c_str(), "w");
  std::fputs("this is not json\n", f);
  std::fclose(f);
  EXPECT_FALSE(LoadQlog(path).ok());
  std::remove(path.c_str());
  EXPECT_FALSE(LoadQlog("no_such_file_qlog.jsonl").ok());
}

// ---------------------------------------------------------------------
// Failpoint: capture is best-effort by contract.
// ---------------------------------------------------------------------

TEST(QueryStoreTest, PoisonedRecordDropsSilently) {
  QueryStore qs;
  {
    ScopedFailPoint fp("querystore.record",
                       FailSpec::Always(Code::kIoError, "store poisoned"));
    qs.Record(MakeRec("SELECT A FROM T", 1.0));
    EXPECT_EQ(qs.recorded(), 0u);
    EXPECT_EQ(qs.dropped(), 1u);
    EXPECT_TRUE(qs.Recent(10).empty());
  }
  // Disarmed: the store works again.
  qs.Record(MakeRec("SELECT A FROM T", 1.0));
  EXPECT_EQ(qs.recorded(), 1u);
  EXPECT_EQ(qs.dropped(), 1u);
}

// ---------------------------------------------------------------------
// Executor capture integration: records assembled at the rollup point.
// ---------------------------------------------------------------------

class CaptureExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto t = db_.CreateTable(
        "sales", Schema({{"region", ValueType::kString, 8},
                         {"day", ValueType::kInt32, 0},
                         {"units", ValueType::kInt32, 0},
                         {"revenue", ValueType::kDouble, 0}}));
    ASSERT_TRUE(t.ok());
    static const char* kRegions[] = {"east", "north", "south", "west"};
    std::vector<Row> rows;
    for (int i = 0; i < 8000; ++i) {
      rows.push_back({Value::String(kRegions[i % 4]), Value::Int32(i % 365),
                      Value::Int32(1 + i % 9), Value::Double(5.0 + i % 200)});
    }
    t.value()->BulkLoad(rows);
    ASSERT_TRUE(t.value()->SetPrimary(PrimaryKind::kBTree, {0, 1}).ok());
    ASSERT_TRUE(t.value()->CreateSecondaryColumnStore("csi_sales").ok());
    t.value()->Analyze();
  }

  QueryResult RunSql(const std::string& sql, QueryStore* qs,
                     uint64_t trace_id = 0) {
    auto q = ParseSql(db_, sql);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    Optimizer opt(&db_);
    auto plan = opt.Plan(*q, Configuration::FromCatalog(db_), {});
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    ExecContext ctx;
    ctx.db = &db_;
    ctx.max_dop = 2;
    if (qs != nullptr) {
      ctx.query_store = qs;
      ctx.capture.sql = sql;
      ctx.capture.norm = NormalizeSql(sql);
      ctx.capture.fingerprint = FingerprintText(ctx.capture.norm);
      ctx.capture.trace_id = trace_id;
    }
    Executor ex(ctx);
    return ex.Execute(*q, plan->plan);
  }

  Database db_;
};

TEST_F(CaptureExecTest, ExecutorAssemblesFullRecord) {
  QueryStore qs;
  const std::string sql =
      "SELECT region, sum(revenue) FROM sales GROUP BY region";
  QueryResult r = RunSql(sql, &qs, /*trace_id=*/0x77);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.trace_id, 0x77u);
  ASSERT_EQ(qs.recorded(), 1u);
  auto recent = qs.Recent(1);
  ASSERT_EQ(recent.size(), 1u);
  const QueryRecord& rec = recent[0];
  EXPECT_EQ(rec.sql, sql);
  EXPECT_EQ(rec.trace_id, 0x77u);
  EXPECT_EQ(rec.kind, "select");
  EXPECT_EQ(rec.fingerprint, FingerprintSql(sql));
  EXPECT_FALSE(rec.plan.empty()) << "plan shape must be captured";
  EXPECT_EQ(rec.rows_out, 4u);  // one row per region
  EXPECT_GT(rec.rows_scanned, 0u);
  EXPECT_GE(rec.latency_ms, 0.0);
  EXPECT_TRUE(rec.ok());
}

TEST_F(CaptureExecTest, UpdateRecordsKindAndAffectedRows) {
  QueryStore qs;
  QueryResult r =
      RunSql("UPDATE sales SET revenue = revenue + 1 WHERE day = 3", &qs);
  ASSERT_TRUE(r.ok());
  auto recent = qs.Recent(1);
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].kind, "update");
  EXPECT_GT(recent[0].rows_out, 0u);  // affected rows
}

TEST_F(CaptureExecTest, TraceIdAppearsInExplainAnalyze) {
  auto q = ParseSql(db_, "EXPLAIN ANALYZE SELECT count(*) FROM sales");
  ASSERT_TRUE(q.ok());
  Optimizer opt(&db_);
  auto plan = opt.Plan(*q, Configuration::FromCatalog(db_), {});
  ASSERT_TRUE(plan.ok());
  ExecContext ctx;
  ctx.db = &db_;
  ctx.capture.trace_id = 0xabcdef0123456789ull;
  Executor ex(ctx);
  QueryResult r = ex.Execute(*q, plan->plan);
  ASSERT_TRUE(r.ok());
  const std::string text = ExplainAnalyze(*q, plan->plan, r);
  EXPECT_NE(text.find("Trace: abcdef0123456789"), std::string::npos) << text;
}

TEST_F(CaptureExecTest, PoisonedStoreNeverFailsTheQuery) {
  QueryStore qs;
  ScopedFailPoint fp("querystore.record",
                     FailSpec::Always(Code::kIoError, "store poisoned"));
  QueryResult r = RunSql("SELECT count(*) FROM sales", &qs);
  EXPECT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_EQ(qs.recorded(), 0u);
  EXPECT_EQ(qs.dropped(), 1u);
}

// ---------------------------------------------------------------------
// The capture loop: captured traffic drives the advisor to the same
// recommendation as the equivalent hand-written workload.
// ---------------------------------------------------------------------

TEST_F(CaptureExecTest, AdvisorConsumesCapturedWorkload) {
  // Fig-6-style traffic: a selective point lookup class (B+ tree
  // friendly) and an analytic scan class (columnstore friendly), with
  // call counts as the weights.
  const std::vector<std::pair<std::string, int>> traffic = {
      {"SELECT units FROM sales WHERE region = 'east' AND day = 7", 6},
      {"SELECT region, sum(revenue) FROM sales GROUP BY region", 3},
      {"SELECT count(*) FROM sales WHERE day < 120", 2},
  };
  QueryStore qs;
  std::vector<Query> handwritten;
  for (const auto& [sql, calls] : traffic) {
    for (int i = 0; i < calls; ++i) {
      ASSERT_TRUE(RunSql(sql, &qs).ok());
    }
    auto q = ParseSql(db_, sql);
    ASSERT_TRUE(q.ok());
    q->weight = calls;
    handwritten.push_back(std::move(*q));
  }
  const std::string path = "qlog_advisor_test.jsonl";
  ASSERT_TRUE(qs.ExportQlog(path).ok());
  size_t skipped = 0;
  auto captured = WorkloadFromCapture(db_, path, &skipped);
  std::remove(path.c_str());
  ASSERT_TRUE(captured.ok()) << captured.status().ToString();
  EXPECT_EQ(skipped, 0u);
  ASSERT_EQ(captured->size(), traffic.size());
  // Class weights match observed call counts.
  double total_weight = 0;
  for (const Query& q : *captured) total_weight += q.weight;
  EXPECT_DOUBLE_EQ(total_weight, 11.0);

  // Same recommendation from the capture as from the hand-written
  // workload it mirrors.
  AdvisorOptions ao;
  ao.mode = AdvisorMode::kHybrid;
  auto rec_hand = Advisor(&db_, ao).Recommend(handwritten);
  auto rec_cap = Advisor(&db_, ao).Recommend(*captured);
  ASSERT_TRUE(rec_hand.ok()) << rec_hand.status().ToString();
  ASSERT_TRUE(rec_cap.ok()) << rec_cap.status().ToString();
  EXPECT_EQ(rec_cap->config.Describe(), rec_hand->config.Describe());
}

}  // namespace
}  // namespace hd
