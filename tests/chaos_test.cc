// Chaos harness: concurrent mixed transactional workloads run while
// failpoints swept from a seeded RNG inject faults across every layer
// (disk, buffer pool, heap, B+ tree, columnstore, locks, thread pool).
//
// After each episode the harness disarms everything and asserts the
// system-wide invariants of docs/ROBUSTNESS.md:
//   (a) no leaked locks          — LockManager::TotalGranted() == 0
//   (b) no leaked versions       — version_count() == 0 after GC
//   (c) recovery                 — the next uninjected query succeeds
//   (d) no hung pool             — the episode terminates (bounded wall)
//   (e) well-typed failures      — every failed op surfaced a Status that
//                                  is the injected code or the driver's
//                                  kResourceExhausted budget verdict
//   (f) exact metrics rollup     — retry/backoff counters in the merged
//                                  QueryMetrics match the driver's totals
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <iterator>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/rng.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "server/client.h"
#include "server/server.h"
#include "txn/transaction.h"
#include "workload/micro.h"
#include "workload/mixed_driver.h"

namespace hd {
namespace {

// The full catalog of wired failpoints (docs/ROBUSTNESS.md).
constexpr const char* kCatalog[] = {
    "disk.read",      "bufferpool.register", "heapfile.io",
    "disk.write",     "bufferpool.evict",    "btree.split",
    "lockmgr.acquire", "csi.compress_delta", "csi.reorganize",
    "threadpool.task", "telemetry.sample",
};
constexpr int kCatalogSize = static_cast<int>(std::size(kCatalog));

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailPoints::Instance().DisarmAll();
    MicroOptions mo;
    mo.rows = 20000;
    mo.max_value = 1000;
    MakeUniformIntTable(&db_, "h", 3, mo);  // heap primary
    Table* c = MakeUniformIntTable(&db_, "c", 3, mo);
    ASSERT_TRUE(c->SetPrimary(PrimaryKind::kColumnStore).ok());
  }
  void TearDown() override { FailPoints::Instance().DisarmAll(); }

  /// Mixed read/update/insert transactions over both physical designs.
  static TxnOp GenOp(int /*tid*/, Rng* rng) {
    const std::string table = rng->Flip(0.5) ? "h" : "c";
    TxnOp op;
    const int64_t pick = rng->Uniform(0, 99);
    if (pick < 40) {
      Query q = MicroQ1(table, 0.05, 1000);
      q.id = "scan";
      op.statements.push_back(std::move(q));
    } else if (pick < 75) {
      Query q;
      q.id = "update";
      q.kind = Query::Kind::kUpdate;
      q.base.table = table;
      q.base.preds = {Pred::Eq(0, Value::Int64(rng->Uniform(0, 1000)))};
      q.sets = {UpdateSet::Add(1, 1.0)};
      op.statements.push_back(std::move(q));
    } else {
      // Multi-statement txn: insert then read back — a failure in either
      // statement must abort the whole op (no partial commit).
      Query ins;
      ins.id = "insert";
      ins.kind = Query::Kind::kInsert;
      ins.base.table = table;
      ins.insert_rows = {{Value::Int64(rng->Uniform(0, 1000)),
                          Value::Int64(rng->Uniform(0, 1000)),
                          Value::Int64(rng->Uniform(0, 1000))}};
      Query q = MicroQ1(table, 0.02, 1000);
      q.id = "insert";
      op.statements.push_back(std::move(ins));
      op.statements.push_back(std::move(q));
    }
    op.id = op.statements.back().id;
    return op;
  }

  MixedResult RunEpisode(TransactionManager* tm, uint64_t seed, int ops) {
    MixedOptions mo;
    mo.threads = 4;
    mo.total_ops = ops;
    mo.seed = seed;
    mo.max_dop_per_query = 2;
    mo.lock_timeout_ms = 100;
    mo.max_retries = 4;        // small budget so exhaustion is reachable
    mo.backoff_base_ms = 0.05;
    mo.backoff_cap_ms = 0.4;
    return RunMixedTxnWorkload(&db_, tm, GenOp, mo);
  }

  QueryResult RunOne(TransactionManager* tm, const Query& q, int dop = 2) {
    Optimizer opt(&db_);
    PlanOptions popts;
    popts.max_dop = dop;
    auto plan = opt.Plan(q, Configuration::FromCatalog(db_), popts);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    ExecContext ctx;
    ctx.db = &db_;
    ctx.txns = tm;
    ctx.max_dop = dop;
    Executor ex(ctx);
    return ex.Execute(q, plan->plan);
  }

  Database db_;
};

TEST_F(ChaosTest, SweepEpisodesHoldInvariants) {
  TransactionManager tm;
  // The telemetry sampler runs through every episode, so sweep-armed
  // `telemetry.sample` injections hit a live sampler and the chaos
  // workload races real registry snapshots.
  TelemetrySampler sampler;
  ASSERT_TRUE(
      sampler.Start(testing::TempDir() + "/chaos_stats.jsonl", 5).ok());

  // Baseline: the workload is clean with nothing armed.
  MixedResult base = RunEpisode(&tm, 1, 60);
  ASSERT_TRUE(base.first_error.ok()) << base.first_error.ToString();
  EXPECT_EQ(base.total_failures, 0u);

  Rng sweep(20260806);
  const Code codes[] = {Code::kIoError, Code::kAborted,
                        Code::kResourceExhausted};
  for (int ep = 0; ep < 5; ++ep) {
    // Arm 2–3 points (possibly re-arming one) with seeded-random
    // triggers and effects.
    const int npoints = static_cast<int>(sweep.Uniform(2, 3));
    bool tp_armed = false;
    std::vector<std::string> armed;
    for (int i = 0; i < npoints; ++i) {
      const char* pt = kCatalog[sweep.Uniform(0, kCatalogSize - 1)];
      tp_armed |= std::string(pt) == "threadpool.task";
      armed.push_back(pt);
      FailSpec spec = FailSpec::Probability(
          sweep.UniformReal(0.02, 0.25), sweep.Uniform(1, 1 << 20),
          codes[sweep.Uniform(0, 2)]);
      if (sweep.Flip(0.3)) spec.latency_ms = 0.5;  // latency spike too
      FailPoints::Instance().Arm(pt, spec);
    }

    MixedResult r = RunEpisode(&tm, 100 + static_cast<uint64_t>(ep), 60);
    FailPoints::Instance().DisarmAll();
    SCOPED_TRACE("episode " + std::to_string(ep) + " armed: " + armed[0] +
                 "," + armed[1] + (armed.size() > 2 ? "," + armed[2] : ""));

    // (d) terminated, with sane accounting. A threadpool.task injection
    // skips client-worker morsels by design; the surviving workers drain
    // the whole op budget unless every worker morsel was skipped.
    uint64_t total_ops = 0;
    for (const auto& [type, st] : r.per_type) total_ops += st.count;
    if (tp_armed) {
      EXPECT_TRUE(total_ops == 60u || total_ops == 0u) << total_ops;
    } else {
      EXPECT_EQ(total_ops, 60u);
    }
    EXPECT_LT(r.wall_ms, 120000.0);

    // (a) no leaked locks, (b) no leaked versions.
    EXPECT_EQ(tm.locks()->TotalGranted(), 0u);
    tm.GarbageCollect();
    EXPECT_EQ(tm.version_count(), 0u);

    // (e) failures, when present, are well-typed: the injected code for
    // non-retryable faults, kResourceExhausted when the retry budget ran
    // out on retryable ones.
    if (r.total_failures > 0) {
      ASSERT_FALSE(r.first_error.ok());
      EXPECT_TRUE(r.first_error.IsResourceExhausted() ||
                  r.first_error.IsIoError() || r.first_error.IsAborted())
          << r.first_error.ToString();
    } else {
      EXPECT_TRUE(r.first_error.ok());
    }
    EXPECT_LE(r.total_exhausted, r.total_failures);

    // (f) exact metrics rollup: driver totals == merged QueryMetrics.
    EXPECT_EQ(r.metrics.txn_retries.load(), r.total_retries);
    if (r.total_retries > 0) {
      EXPECT_GT(r.metrics.backoff_ns.load(), 0u);
    }

    // (c) recovery: the next uninjected queries succeed on both designs.
    QueryResult qh = RunOne(&tm, MicroQ1("h", 0.5, 1000), 4);
    EXPECT_TRUE(qh.ok()) << qh.status.ToString();
    QueryResult qc = RunOne(&tm, MicroQ1("c", 0.5, 1000), 4);
    EXPECT_TRUE(qc.ok()) << qc.status.ToString();
  }
  sampler.Stop();
  EXPECT_GT(sampler.samples_written(), 0u);
}

// Shutdown-ordering regression: the sampler must keep snapshotting safely
// while every engine object it reports on (Database -> tables -> CSIs ->
// BufferPool, TransactionManager) is destroyed underneath it, because it
// reads only the leaked registry. The per-instance gauge contributions
// must also retract exactly on destruction, so process gauges return to
// their pre-engine baseline instead of pointing at dead objects.
TEST(TelemetryShutdownOrder, SamplerSurvivesEngineTeardown) {
  const TelemetrySnapshot before = Telemetry::Instance().Snapshot();
  const auto base_gauge = [&](const char* n) {
    auto it = before.gauges.find(n);
    return it == before.gauges.end() ? int64_t{0} : it->second;
  };

  TelemetrySampler sampler;
  ASSERT_TRUE(
      sampler.Start(testing::TempDir() + "/shutdown_stats.jsonl", 1).ok());
  {
    Database db;
    MicroOptions mo;
    mo.rows = 20000;
    mo.max_value = 1000;
    Table* c = MakeUniformIntTable(&db, "t", 3, mo);
    ASSERT_TRUE(c->SetPrimary(PrimaryKind::kColumnStore).ok());
    TransactionManager tm;
    // Touch every instrumented subsystem so the gauges are non-trivially
    // populated while the sampler ticks.
    Optimizer opt(&db);
    Query q = MicroQ1("t", 0.5, 1000);
    auto plan = opt.Plan(q, Configuration::FromCatalog(db), {});
    ASSERT_TRUE(plan.ok());
    ExecContext ctx;
    ctx.db = &db;
    ctx.txns = &tm;
    ctx.max_dop = 4;
    Executor ex(ctx);
    ASSERT_TRUE(ex.Execute(q, plan->plan).ok());
    TelemetrySnapshot live = Telemetry::Instance().Snapshot();
    EXPECT_GT(live.gauges["csi.row_groups"], base_gauge("csi.row_groups"));
    EXPECT_GT(live.gauges["bp.total_bytes"], base_gauge("bp.total_bytes"));
    // Engine objects die here, sampler still running.
  }
  // Let the sampler take ticks strictly after the teardown.
  const uint64_t at_teardown = sampler.samples_written();
  while (sampler.samples_written() < at_teardown + 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sampler.Stop();
  EXPECT_GT(sampler.samples_written(), at_teardown);

  const TelemetrySnapshot after = Telemetry::Instance().Snapshot();
  for (const char* g : {"csi.row_groups", "csi.compressed_rows",
                        "csi.delta_rows", "csi.delete_buffer_rows",
                        "csi.deleted_rows", "csi.compressed_bytes",
                        "csi.raw_bytes", "bp.resident_bytes",
                        "bp.total_bytes"}) {
    auto it = after.gauges.find(g);
    if (it == after.gauges.end()) continue;
    EXPECT_EQ(it->second, base_gauge(g)) << g;
  }
}

TEST_F(ChaosTest, LockInjectionLeavesCleanStateAndRecovers) {
  TransactionManager tm;
  Query upd;
  upd.kind = Query::Kind::kUpdate;
  upd.base.table = "h";
  upd.base.preds = {Pred::Lt(0, Value::Int64(100))};
  upd.sets = {UpdateSet::Add(1, 1.0)};

  {
    ScopedFailPoint fp("lockmgr.acquire", FailSpec::OneShot(Code::kAborted,
                                                            "spurious"));
    auto txn = tm.Begin(IsolationLevel::kReadCommitted);
    Optimizer opt(&db_);
    auto plan = opt.Plan(upd, Configuration::FromCatalog(db_), {});
    ASSERT_TRUE(plan.ok());
    ExecContext ctx;
    ctx.db = &db_;
    ctx.txns = &tm;
    ctx.txn = txn.get();
    Executor ex(ctx);
    QueryResult r = ex.Execute(upd, plan->plan);
    EXPECT_TRUE(r.status.IsAborted()) << r.status.ToString();
    tm.Abort(txn.get());
  }
  // The abort left no locks and no phantom versions behind.
  EXPECT_EQ(tm.locks()->TotalGranted(), 0u);
  tm.GarbageCollect();
  EXPECT_EQ(tm.version_count(), 0u);

  // Uninjected retry of the identical statement succeeds.
  auto txn = tm.Begin(IsolationLevel::kReadCommitted);
  Optimizer opt(&db_);
  auto plan = opt.Plan(upd, Configuration::FromCatalog(db_), {});
  ASSERT_TRUE(plan.ok());
  ExecContext ctx;
  ctx.db = &db_;
  ctx.txns = &tm;
  ctx.txn = txn.get();
  Executor ex(ctx);
  QueryResult r = ex.Execute(upd, plan->plan);
  EXPECT_TRUE(r.ok()) << r.status.ToString();
  tm.Commit(txn.get());
  EXPECT_EQ(tm.locks()->TotalGranted(), 0u);
}

TEST_F(ChaosTest, MorselInjectionCancelsLoopAndPoolSurvives) {
  TransactionManager tm;
  {
    ScopedFailPoint fp("threadpool.task",
                       FailSpec::EveryNth(4, Code::kIoError, "lane died"));
    std::atomic<bool> cancel{false};
    std::atomic<uint64_t> ran{0};
    MorselStats ms = ThreadPool::Global().ParallelFor(
        256, 4, [&](int, uint64_t) { ran.fetch_add(1); }, &cancel);
    // The first injected lane failure surfaced and tripped cancellation:
    // the loop was cut short instead of burning all 256 morsels.
    EXPECT_TRUE(ms.status.IsIoError()) << ms.status.ToString();
    EXPECT_TRUE(cancel.load());
    EXPECT_LT(ran.load(), 256u);
    EXPECT_EQ(ms.scheduled, ran.load());
  }
  // The pool is not hung: a full loop and a parallel query both run clean.
  MorselStats ms = ThreadPool::Global().ParallelFor(
      256, 4, [](int, uint64_t) {}, nullptr);
  EXPECT_TRUE(ms.status.ok());
  EXPECT_EQ(ms.scheduled, 256u);
  QueryResult r = RunOne(&tm, MicroQ1("h", 1.0, 1000), 4);
  EXPECT_TRUE(r.ok()) << r.status.ToString();
}

TEST_F(ChaosTest, RetryBudgetExhaustionSurfacesWithCounters) {
  TransactionManager tm;
  // Every lock acquire fails -> every op retries to exhaustion (scans,
  // updates, and inserts all acquire locks under RC).
  FailPoints::Instance().Arm("lockmgr.acquire",
                             FailSpec::Always(Code::kAborted, "spurious"));
  MixedResult r = RunEpisode(&tm, 7, 24);
  FailPoints::Instance().DisarmAll();

  EXPECT_EQ(r.total_failures, 24u);
  EXPECT_EQ(r.total_exhausted, 24u);
  ASSERT_FALSE(r.first_error.ok());
  EXPECT_TRUE(r.first_error.IsResourceExhausted()) << r.first_error.ToString();
  // 4 retries per op, all counted in both rollups, with real backoff time.
  EXPECT_EQ(r.total_retries, 24u * 4);
  EXPECT_EQ(r.metrics.txn_retries.load(), r.total_retries);
  EXPECT_GT(r.metrics.backoff_ns.load(), 0u);
  uint64_t failures = 0;
  for (const auto& [type, st] : r.per_type) failures += st.failures;
  EXPECT_EQ(failures, 24u);

  EXPECT_EQ(tm.locks()->TotalGranted(), 0u);
  tm.GarbageCollect();
  EXPECT_EQ(tm.version_count(), 0u);

  // Clean run afterwards: no residual failures.
  MixedResult clean = RunEpisode(&tm, 8, 24);
  EXPECT_EQ(clean.total_failures, 0u);
  EXPECT_TRUE(clean.first_error.ok()) << clean.first_error.ToString();
}

// Connection-fault sweep over the socket/session layer's failpoint seams
// (server.accept, server.read, server.write — docs/ROBUSTNESS.md). Each
// episode arms a probability mix while clients hammer the server with
// queries and abrupt disconnects; after disarming, the server must hold
// the same invariants as the engine sweep: no leaked sessions, no leaked
// locks, and full recovery for the next clean client.
TEST_F(ChaosTest, ServerConnectionFaultSweepRecovers) {
  ServerOptions sopts;
  sopts.shared_scans = true;
  sopts.workers = 2;
  Server server(&db_, sopts);
  ASSERT_TRUE(server.Start().ok());

  Rng sweep(20260809);
  const char* kSeams[] = {"server.accept", "server.read", "server.write"};
  for (int ep = 0; ep < 4; ++ep) {
    SCOPED_TRACE("episode " + std::to_string(ep));
    const int npoints = static_cast<int>(sweep.Uniform(1, 3));
    for (int i = 0; i < npoints; ++i) {
      FailPoints::Instance().Arm(
          kSeams[sweep.Uniform(0, 2)],
          FailSpec::Probability(sweep.UniformReal(0.05, 0.4),
                                sweep.Uniform(1, 1 << 20), Code::kIoError,
                                "connection chaos"));
    }

    std::vector<std::thread> clients;
    for (int t = 0; t < 4; ++t) {
      const uint64_t seed = sweep.Uniform(1, 1 << 20);
      clients.emplace_back([&server, seed] {
        Rng rng(seed);
        for (int q = 0; q < 8; ++q) {
          Client c;
          if (!c.Connect("127.0.0.1", server.port()).ok()) continue;
          // Errors are expected under injection; crashes and hangs are
          // not. A fraction of clients vanish mid-conversation.
          (void)c.Query(rng.Flip(0.5)
                            ? "SELECT sum(col0) FROM c WHERE col0 < 500"
                            : "SELECT count(*) FROM h WHERE col1 < 200");
          if (rng.Flip(0.3)) {
            c.Abort();
          } else {
            (void)c.Close();
          }
        }
      });
    }
    for (auto& th : clients) th.join();
    FailPoints::Instance().DisarmAll();

    // Invariants after every episode: sessions drain, nothing leaks,
    // and a clean client gets a correct answer.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(5000);
    while (server.sessions_active() > 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_EQ(server.sessions_active(), 0);
    EXPECT_EQ(server.txns()->locks()->TotalGranted(), 0u);
    EXPECT_EQ(server.scan_scheduler()->active_passes(), 0u);
    Client probe;
    ASSERT_TRUE(probe.Connect("127.0.0.1", server.port()).ok());
    auto r = probe.Query("SELECT count(*) FROM h");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r->rows.size(), 1u);
    EXPECT_EQ(r->rows[0][0].ToString(), "20000");
  }
  server.Stop();
}

// Query-store chaos (docs/ROBUSTNESS.md, PR 10): the `querystore.record`
// seam is swept with probability faults while concurrent clients run
// statements through the server. The capture contract is best-effort:
//   (k) no query ever fails because its capture write was poisoned
//   (l) exact accounting — recorded + dropped == statements issued
TEST_F(ChaosTest, QueryStoreFaultSweepNeverFailsQueries) {
  ServerOptions sopts;
  sopts.workers = 2;
  Server server(&db_, sopts);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.query_store(), nullptr);

  Rng sweep(424242);
  uint64_t issued = 0;
  for (int ep = 0; ep < 3; ++ep) {
    SCOPED_TRACE("episode " + std::to_string(ep));
    FailPoints::Instance().Arm(
        "querystore.record",
        FailSpec::Probability(sweep.UniformReal(0.2, 0.8),
                              sweep.Uniform(1, 1 << 20), Code::kIoError,
                              "capture chaos"));
    std::atomic<uint64_t> ok_count{0};
    std::vector<std::thread> clients;
    for (int t = 0; t < 4; ++t) {
      clients.emplace_back([&server, &ok_count] {
        Client c;
        if (!c.Connect("127.0.0.1", server.port()).ok()) return;
        for (int q = 0; q < 10; ++q) {
          auto r = c.Query("SELECT count(*) FROM h WHERE col1 < 200");
          // (k): capture faults must be invisible to the client.
          EXPECT_TRUE(r.ok()) << r.status().ToString();
          if (r.ok()) ok_count.fetch_add(1);
        }
        (void)c.Close();
      });
    }
    for (auto& th : clients) th.join();
    FailPoints::Instance().DisarmAll();
    issued += ok_count.load();
    EXPECT_EQ(ok_count.load(), 40u);
  }
  // (l): every issued statement was either captured or counted dropped —
  // and the sweep probabilities make both bins nonempty with certainty
  // for these seeds.
  const QueryStore& qs = *server.query_store();
  EXPECT_EQ(qs.recorded() + qs.dropped(), issued);
  EXPECT_GT(qs.recorded(), 0u);
  EXPECT_GT(qs.dropped(), 0u);
  server.Stop();
}

// Abrupt disconnect mid-exchange (PR 10): the session executes a
// statement it can no longer answer — the client is gone — but the
// query-store record must still be finalized exactly once: execution is
// synchronous in the session worker and the record is assembled at the
// executor's rollup point, before any doomed send.
TEST_F(ChaosTest, AbruptDisconnectStillFinalizesCaptureRecord) {
  ServerOptions sopts;
  sopts.workers = 1;
  Server server(&db_, sopts);
  ASSERT_TRUE(server.Start().ok());
  const uint64_t before = server.query_store()->recorded();
  {
    Client c;
    ASSERT_TRUE(c.Connect("127.0.0.1", server.port()).ok());
    // Fire the query and vanish without reading the response.
    ASSERT_TRUE(WriteFrame(c.fd(), MsgType::kQuery,
                           EncodeQuery({"SELECT sum(col0) FROM c WHERE "
                                        "col0 < 900",
                                        0xabad1deaull}))
                    .ok());
    c.Abort();
  }
  // The worker finishes the statement and finalizes the record.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5000);
  while (server.query_store()->recorded() == before &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.query_store()->recorded(), before + 1);
  auto recent = server.query_store()->Recent(1);
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].trace_id, 0xabad1deaull);
  EXPECT_TRUE(recent[0].ok());
  // And the session itself drains without leaks.
  const auto drain =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5000);
  while (server.sessions_active() > 0 &&
         std::chrono::steady_clock::now() < drain) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.sessions_active(), 0);
  server.Stop();
}

// Restart chaos (docs/ROBUSTNESS.md "Durability"): a concurrent
// transactional insert workload over a DURABLE database is killed without
// a checkpoint or clean shutdown — with fsync faults injected mid-run —
// and recovered from disk. Invariants after every recovery, per seed:
//   (g) committed durable   — every txn whose Commit() returned OK is
//                             fully present after replay
//   (h) uncommitted gone    — every client-aborted txn is fully absent
//   (i) atomic ambiguity    — a commit that FAILED (durability unknown)
//                             is all-there or all-gone, never torn
//   (j) telemetry agreement — redo/undo record counts match the ledger
TEST_F(ChaosTest, RestartSweepCommittedDurableUncommittedGone) {
  for (const uint64_t seed : {1001ull, 2002ull, 3003ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const std::string dir =
        testing::TempDir() + "/chaos_restart_" + std::to_string(seed);
    std::filesystem::remove_all(dir);

    constexpr int kThreads = 4;
    constexpr int kTxnsPerThread = 30;
    // Per-txn ledger: the pair of unique col0 values it inserted, by fate.
    std::mutex ledger_mu;
    std::vector<std::pair<int64_t, int64_t>> committed, aborted, unknown;
    {
      Database db;
      ASSERT_TRUE(db.OpenDurability(dir, DurabilityMode::kGroup).ok());
      auto made = db.CreateTable(
          "d", Schema({{"a", ValueType::kInt64, 0},
                       {"b", ValueType::kInt64, 0}}));
      ASSERT_TRUE(made.ok());
      // DDL is not logged: the checkpoint is its durability point.
      ASSERT_TRUE(db.Checkpoint().ok());
      TransactionManager tm;
      tm.BindWal(db.wal());

      // Fsync faults land on a fraction of group-commit batches, turning
      // those commits into durability-unknown failures.
      FailPoints::Instance().Arm(
          "wal.fsync", FailSpec::Probability(0.05, seed, Code::kIoError,
                                             "battery died"));
      std::vector<std::thread> workers;
      for (int tid = 0; tid < kThreads; ++tid) {
        workers.emplace_back([&, tid] {
          Rng rng(seed * 131 + tid);
          for (int i = 0; i < kTxnsPerThread; ++i) {
            const int64_t v = (tid * kTxnsPerThread + i) * 2;
            auto txn = tm.Begin(IsolationLevel::kReadCommitted);
            Query ins;
            ins.id = "ins";
            ins.kind = Query::Kind::kInsert;
            ins.base.table = "d";
            // Two rows in one txn: recovery must keep or drop BOTH.
            ins.insert_rows = {{Value::Int64(v), Value::Int64(tid)},
                               {Value::Int64(v + 1), Value::Int64(tid)}};
            Optimizer opt(&db);
            auto plan = opt.Plan(ins, Configuration::FromCatalog(db), {});
            ASSERT_TRUE(plan.ok());
            ExecContext ctx;
            ctx.db = &db;
            ctx.txns = &tm;
            ctx.txn = txn.get();
            Executor ex(ctx);
            QueryResult r = ex.Execute(ins, plan->plan);
            std::lock_guard<std::mutex> g(ledger_mu);
            if (!r.ok()) {
              tm.Abort(txn.get());
              aborted.emplace_back(v, v + 1);
            } else if (rng.Flip(0.2)) {
              tm.Abort(txn.get());
              aborted.emplace_back(v, v + 1);
            } else if (Status cs = tm.Commit(txn.get()); cs.ok()) {
              committed.emplace_back(v, v + 1);
            } else {
              unknown.emplace_back(v, v + 1);
            }
          }
        });
      }
      for (auto& w : workers) w.join();
      FailPoints::Instance().DisarmAll();
      // kill -9: the Database goes away with no checkpoint and no drain.
    }

    Database db2;
    RecoveryStats stats;
    ASSERT_TRUE(db2.OpenDurability(dir, DurabilityMode::kGroup, WalOptions(),
                                   &stats)
                    .ok());
    Table* t = db2.GetTable("d");
    ASSERT_NE(t, nullptr);
    std::set<int64_t> present;
    t->ScanAll(
        [&](int64_t, const int64_t* row) {
          present.insert(row[0]);
          return true;
        },
        nullptr);
    for (const auto& [a, b] : committed) {
      EXPECT_TRUE(present.count(a) && present.count(b))
          << "committed txn (" << a << "," << b << ") lost";
    }
    for (const auto& [a, b] : aborted) {
      EXPECT_TRUE(!present.count(a) && !present.count(b))
          << "aborted txn (" << a << "," << b << ") survived";
    }
    for (const auto& [a, b] : unknown) {
      EXPECT_EQ(present.count(a), present.count(b))
          << "durability-unknown txn (" << a << "," << b << ") torn";
    }
    // Telemetry agreement: replay re-inserts every logged insert
    // (winners and losers), and undo removes at least the aborted pairs.
    EXPECT_GE(stats.redo_records,
              2 * (committed.size() + aborted.size()));
    EXPECT_GE(stats.undo_records, 2 * aborted.size());
  }
}

}  // namespace
}  // namespace hd
