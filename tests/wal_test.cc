// WAL + recovery tests (storage/wal.h, catalog/recovery.h): record
// framing and CRC rejection, torn-tail discipline, LSN ordering across
// segment rotation, group-commit fsync batching, checkpoint round-trips,
// and the kill-9 recovery contract (committed durable, uncommitted gone).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "catalog/database.h"
#include "catalog/recovery.h"
#include "common/failpoint.h"
#include "storage/wal.h"

namespace hd {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& tag) {
  const std::string d = testing::TempDir() + "/wal_" + tag + "_" +
                        std::to_string(::getpid());
  fs::remove_all(d);
  fs::create_directories(d);
  return d;
}

WalRecord MakeInsert(uint64_t txn, uint32_t table, int64_t rid, int64_t v) {
  WalRecord rec;
  rec.type = WalRecordType::kInsert;
  rec.txn = txn;
  rec.table_id = table;
  rec.rid = rid;
  rec.new_row = {WalValue::Packed(v), WalValue::Str("s" + std::to_string(v)),
                 WalValue::Null()};
  return rec;
}

class WalTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPoints::Instance().DisarmAll(); }
};

TEST_F(WalTest, AppendReadRoundtrip) {
  const std::string dir = FreshDir("roundtrip");
  {
    WalManager wal(dir, DurabilityMode::kCommit);
    ASSERT_TRUE(wal.Open(1, 1).ok());
    const uint64_t txn = wal.AllocTxnId();
    WalRecord ins = MakeInsert(txn, 7, 0, 42);
    ASSERT_TRUE(wal.Append(&ins).ok());
    EXPECT_EQ(ins.lsn, 1u);
    WalRecord upd;
    upd.type = WalRecordType::kUpdate;
    upd.txn = txn;
    upd.table_id = 7;
    upd.rid = 0;
    upd.old_row = ins.new_row;
    upd.new_row = {WalValue::Packed(43), WalValue::Str("t"), WalValue::Null()};
    ASSERT_TRUE(wal.Append(&upd).ok());
    WalRecord reorg;
    reorg.type = WalRecordType::kCsiReorg;
    reorg.table_id = 7;
    reorg.aux = "csi_x";
    ASSERT_TRUE(wal.Append(&reorg).ok());
    ASSERT_TRUE(wal.Commit(txn).ok());
  }
  std::vector<WalRecord> got;
  uint64_t truncated = 777;
  ASSERT_TRUE(WalManager::ReadLog(
                  dir, [&](const WalRecord& r) { got.push_back(r); },
                  &truncated)
                  .ok());
  EXPECT_EQ(truncated, 0u);
  ASSERT_EQ(got.size(), 4u);  // insert, update, reorg, commit
  EXPECT_EQ(got[0].type, WalRecordType::kInsert);
  EXPECT_EQ(got[0].table_id, 7u);
  EXPECT_EQ(got[0].rid, 0);
  ASSERT_EQ(got[0].new_row.size(), 3u);
  EXPECT_EQ(got[0].new_row[0].tag, WalValue::Tag::kPacked);
  EXPECT_EQ(got[0].new_row[0].packed, 42);
  EXPECT_EQ(got[0].new_row[1].tag, WalValue::Tag::kString);
  EXPECT_EQ(got[0].new_row[1].str, "s42");
  EXPECT_EQ(got[0].new_row[2].tag, WalValue::Tag::kNull);
  EXPECT_EQ(got[1].type, WalRecordType::kUpdate);
  EXPECT_EQ(got[1].old_row[0].packed, 42);
  EXPECT_EQ(got[1].new_row[0].packed, 43);
  EXPECT_EQ(got[2].type, WalRecordType::kCsiReorg);
  EXPECT_EQ(got[2].aux, "csi_x");
  EXPECT_EQ(got[3].type, WalRecordType::kTxnCommit);
  for (size_t i = 1; i < got.size(); ++i) EXPECT_GT(got[i].lsn, got[i - 1].lsn);
}

TEST_F(WalTest, TornTailIsDiscarded) {
  const std::string dir = FreshDir("torn");
  {
    WalManager wal(dir, DurabilityMode::kCommit);
    ASSERT_TRUE(wal.Open(1, 1).ok());
    for (int i = 0; i < 5; ++i) {
      WalRecord r = MakeInsert(0, 1, i, i);
      ASSERT_TRUE(wal.Append(&r).ok());
    }
    ASSERT_TRUE(wal.Sync().ok());
  }
  // Simulate a torn write: append half a frame of garbage to the segment.
  std::string seg;
  for (const auto& e : fs::directory_iterator(WalManager::WalDir(dir))) {
    seg = e.path().string();
  }
  ASSERT_FALSE(seg.empty());
  {
    FILE* f = std::fopen(seg.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const uint8_t garbage[] = {0x40, 0x00, 0x00, 0x00, 0xde, 0xad};
    std::fwrite(garbage, 1, sizeof(garbage), f);
    std::fclose(f);
  }
  size_t n = 0;
  uint64_t truncated = 0;
  ASSERT_TRUE(
      WalManager::ReadLog(dir, [&](const WalRecord&) { ++n; }, &truncated)
          .ok());
  EXPECT_EQ(n, 5u);
  EXPECT_EQ(truncated, sizeof(uint8_t[6]));
}

TEST_F(WalTest, CorruptFrameStopsSegment) {
  const std::string dir = FreshDir("crc");
  {
    WalManager wal(dir, DurabilityMode::kCommit);
    ASSERT_TRUE(wal.Open(1, 1).ok());
    for (int i = 0; i < 10; ++i) {
      WalRecord r = MakeInsert(0, 1, i, i);
      ASSERT_TRUE(wal.Append(&r).ok());
    }
    ASSERT_TRUE(wal.Sync().ok());
  }
  std::string seg;
  for (const auto& e : fs::directory_iterator(WalManager::WalDir(dir))) {
    seg = e.path().string();
  }
  // Flip one byte somewhere in the middle of the record stream.
  const auto size = fs::file_size(seg);
  {
    FILE* f = std::fopen(seg.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, static_cast<long>(size / 2), SEEK_SET);
    const int c = std::fgetc(f);
    std::fseek(f, static_cast<long>(size / 2), SEEK_SET);
    std::fputc(c ^ 0xff, f);
    std::fclose(f);
  }
  size_t n = 0;
  uint64_t truncated = 0;
  ASSERT_TRUE(
      WalManager::ReadLog(dir, [&](const WalRecord&) { ++n; }, &truncated)
          .ok());
  EXPECT_LT(n, 10u);     // everything after the flipped byte is tail
  EXPECT_GT(truncated, 0u);
}

TEST_F(WalTest, SegmentRotationKeepsLsnOrderAndTruncates) {
  const std::string dir = FreshDir("rotate");
  WalOptions opts;
  opts.segment_bytes = 2048;  // force many rotations
  uint64_t last_appended = 0;
  {
    WalManager wal(dir, DurabilityMode::kCommit, opts);
    ASSERT_TRUE(wal.Open(1, 1).ok());
    for (int i = 0; i < 200; ++i) {
      WalRecord r = MakeInsert(0, 1, i, i);
      ASSERT_TRUE(wal.Append(&r, &last_appended).ok());
      // Rotation happens at sync time; sync in small batches so segment
      // budgets are enforced often, as the commit paths do.
      if (i % 10 == 9) ASSERT_TRUE(wal.Sync().ok());
    }
    ASSERT_TRUE(wal.Sync().ok());
    size_t segments = 0;
    for (const auto& e : fs::directory_iterator(WalManager::WalDir(dir))) {
      (void)e;
      ++segments;
    }
    EXPECT_GT(segments, 3u);

    // Truncating below an LSN in the middle deletes whole old segments but
    // keeps every record >= the horizon.
    ASSERT_TRUE(wal.TruncateBelow(100).ok());
  }
  uint64_t prev = 0;
  uint64_t first = 0;
  size_t n = 0;
  ASSERT_TRUE(WalManager::ReadLog(dir,
                                  [&](const WalRecord& r) {
                                    if (first == 0) first = r.lsn;
                                    EXPECT_GT(r.lsn, prev);
                                    prev = r.lsn;
                                    ++n;
                                  },
                                  nullptr)
                  .ok());
  EXPECT_GT(n, 0u);
  EXPECT_LE(first, 100u);         // the horizon's segment survives whole
  EXPECT_EQ(prev, last_appended); // nothing at the tail was lost
}

TEST_F(WalTest, GroupCommitBatchesFsyncs) {
  const std::string dir = FreshDir("group");
  WalManager wal(dir, DurabilityMode::kGroup);
  ASSERT_TRUE(wal.Open(1, 1).ok());
  constexpr int kThreads = 8;
  constexpr int kTxnsPerThread = 40;
  const uint64_t fsyncs_before = wal.fsyncs();
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kTxnsPerThread; ++i) {
        const uint64_t txn = wal.AllocTxnId();
        WalRecord r = MakeInsert(txn, 1, t * kTxnsPerThread + i, i);
        if (!wal.Append(&r).ok() || !wal.Commit(txn).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  const uint64_t fsyncs = wal.fsyncs() - fsyncs_before;
  constexpr uint64_t kCommits = kThreads * kTxnsPerThread;
  // The acceptance bar: with k >= 8 concurrent committers, batching must
  // push mean fsyncs per transaction below 1.
  EXPECT_LT(fsyncs, kCommits)
      << "group commit did not batch: " << fsyncs << " fsyncs for "
      << kCommits << " commits";
}

TEST_F(WalTest, CommitModeFsyncsEveryCommit) {
  const std::string dir = FreshDir("commitmode");
  WalManager wal(dir, DurabilityMode::kCommit);
  ASSERT_TRUE(wal.Open(1, 1).ok());
  const uint64_t before = wal.fsyncs();
  for (int i = 0; i < 10; ++i) {
    const uint64_t txn = wal.AllocTxnId();
    WalRecord r = MakeInsert(txn, 1, i, i);
    ASSERT_TRUE(wal.Append(&r).ok());
    ASSERT_TRUE(wal.Commit(txn).ok());
  }
  EXPECT_GE(wal.fsyncs() - before, 10u);
}

TEST_F(WalTest, AppendFailpointRejectsRecord) {
  const std::string dir = FreshDir("appendfp");
  WalManager wal(dir, DurabilityMode::kCommit);
  ASSERT_TRUE(wal.Open(1, 1).ok());
  FailPoints::Instance().Arm("wal.append",
                             FailSpec::Always(Code::kIoError));
  WalRecord r = MakeInsert(1, 1, 0, 0);
  EXPECT_TRUE(wal.Append(&r).IsIoError());
  FailPoints::Instance().DisarmAll();
  WalRecord r2 = MakeInsert(1, 1, 0, 0);
  EXPECT_TRUE(wal.Append(&r2).ok());
}

TEST_F(WalTest, FsyncFailpointFailsCommitDurability) {
  const std::string dir = FreshDir("fsyncfp");
  WalManager wal(dir, DurabilityMode::kCommit);
  ASSERT_TRUE(wal.Open(1, 1).ok());
  const uint64_t txn = wal.AllocTxnId();
  WalRecord r = MakeInsert(txn, 1, 0, 0);
  ASSERT_TRUE(wal.Append(&r).ok());
  FailPoints::Instance().Arm("wal.fsync", FailSpec::OneShot(Code::kIoError));
  EXPECT_FALSE(wal.Commit(txn).ok());
  FailPoints::Instance().DisarmAll();
  // The log heals: later commits succeed.
  const uint64_t txn2 = wal.AllocTxnId();
  WalRecord r2 = MakeInsert(txn2, 1, 1, 1);
  ASSERT_TRUE(wal.Append(&r2).ok());
  EXPECT_TRUE(wal.Commit(txn2).ok());
}

// ---------------------------------------------------------------------
// Checkpoint + restart recovery through the Database/Table stack.
// ---------------------------------------------------------------------

class RecoveryTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPoints::Instance().DisarmAll(); }

  static Schema DemoSchema() {
    return Schema({{"k", ValueType::kInt64, 0},
                   {"name", ValueType::kString, 8},
                   {"v", ValueType::kInt64, 0}});
  }

  /// Fresh durable database with `rows` bulk-loaded rows, checkpointed.
  static std::unique_ptr<Database> MakeDurable(const std::string& dir,
                                               DurabilityMode mode, int rows,
                                               PrimaryKind kind) {
    auto db = std::make_unique<Database>();
    EXPECT_TRUE(db->OpenDurability(dir, mode).ok());
    auto t = db->CreateTable("t", DemoSchema());
    EXPECT_TRUE(t.ok());
    std::vector<Row> load;
    for (int i = 0; i < rows; ++i) {
      load.push_back({Value::Int64(i), Value::String("n" + std::to_string(i % 7)),
                      Value::Int64(i * 10)});
    }
    t.value()->BulkLoad(load);
    if (kind != PrimaryKind::kHeap) {
      EXPECT_TRUE(t.value()->SetPrimary(kind, {0}).ok());
    }
    // One columnstore per table: a primary CSI precludes a secondary one.
    if (kind != PrimaryKind::kColumnStore) {
      EXPECT_TRUE(t.value()->CreateSecondaryColumnStore("csi_t").ok());
    }
    t.value()->Analyze();
    EXPECT_TRUE(db->Checkpoint().ok());
    return db;
  }

  static std::set<int64_t> Col0Values(Table* t) {
    std::set<int64_t> vals;
    t->ScanAll(
        [&](int64_t, const int64_t* row) {
          vals.insert(row[0]);
          return true;
        },
        nullptr);
    return vals;
  }
};

TEST_F(RecoveryTest, CheckpointRoundtripRestoresEverything) {
  const std::string dir = FreshDir("ckpt");
  uint64_t rows_before, size_before;
  int64_t next_rid_before;
  {
    auto db = MakeDurable(dir, DurabilityMode::kCommit, 500,
                          PrimaryKind::kBTree);
    Table* t = db->GetTable("t");
    rows_before = t->num_rows();
    next_rid_before = t->next_rid();
    size_before = t->primary_size_bytes();
    (void)size_before;
  }
  Database db2;
  RecoveryStats stats;
  ASSERT_TRUE(db2.OpenDurability(dir, DurabilityMode::kCommit, WalOptions(),
                                 &stats)
                  .ok());
  EXPECT_TRUE(stats.checkpoint_loaded);
  Table* t = db2.GetTable("t");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->num_rows(), rows_before);
  EXPECT_EQ(t->next_rid(), next_rid_before);
  EXPECT_EQ(t->primary_kind(), PrimaryKind::kBTree);
  ASSERT_NE(t->FindSecondary("csi_t"), nullptr);
  // Dictionary survives code-for-code: the packed images match strings.
  bool saw = false;
  t->ScanAll(
      [&](int64_t, const int64_t* row) {
        const Value v = t->UnpackValue(1, row[1]);
        EXPECT_EQ(v.str().substr(0, 1), "n");
        saw = true;
        return true;
      },
      nullptr);
  EXPECT_TRUE(saw);
}

TEST_F(RecoveryTest, CommittedSurviveKillUncommittedVanish) {
  const std::string dir = FreshDir("kill9");
  {
    auto db = MakeDurable(dir, DurabilityMode::kCommit, 100,
                          PrimaryKind::kHeap);
    Table* t = db->GetTable("t");
    // Committed (statement self-commit): present after recovery.
    PackedRow committed = t->PackRow(
        {Value::Int64(100000), Value::String("durable"), Value::Int64(1)});
    ASSERT_TRUE(t->InsertPacked(committed, nullptr).ok());
    // Uncommitted: logged under an explicit txn that never commits — the
    // crash strikes first. Recovery must roll it back.
    const uint64_t orphan = db->wal()->AllocTxnId();
    PackedRow uncommitted = t->PackRow(
        {Value::Int64(200000), Value::String("ghost"), Value::Int64(2)});
    ASSERT_TRUE(t->InsertPacked(uncommitted, nullptr, nullptr, orphan).ok());
    ASSERT_TRUE(db->wal()->Flush().ok());
    // kill -9: Database destroyed with no checkpoint, no commit.
  }
  Database db2;
  RecoveryStats stats;
  ASSERT_TRUE(db2.OpenDurability(dir, DurabilityMode::kCommit, WalOptions(),
                                 &stats)
                  .ok());
  Table* t = db2.GetTable("t");
  ASSERT_NE(t, nullptr);
  const std::set<int64_t> vals = Col0Values(t);
  EXPECT_TRUE(vals.count(100000)) << "committed insert lost";
  EXPECT_FALSE(vals.count(200000)) << "uncommitted insert survived";
  EXPECT_GT(stats.redo_records, 0u);
  EXPECT_GT(stats.undo_records, 0u);
  // Repeating history: the loser's rid was re-inserted then tombstoned, so
  // rid allocation continues past it.
  EXPECT_GE(t->next_rid(), 102);
}

TEST_F(RecoveryTest, UpdatesAndDeletesReplay) {
  const std::string dir = FreshDir("updel");
  int64_t updated_rid = -1;
  {
    auto db = MakeDurable(dir, DurabilityMode::kCommit, 50,
                          PrimaryKind::kBTree);
    Table* t = db->GetTable("t");
    // Find the row with k=7 and update its v; delete the row with k=9.
    std::vector<RowRef> upd, del;
    t->ScanAll(
        [&](int64_t rid, const int64_t* row) {
          if (row[0] == 7) upd.push_back({rid, PackedRow(row, row + 3)});
          if (row[0] == 9) del.push_back({rid, PackedRow(row, row + 3)});
          return true;
        },
        nullptr);
    ASSERT_EQ(upd.size(), 1u);
    ASSERT_EQ(del.size(), 1u);
    updated_rid = upd[0].rid;
    PackedRow nr = upd[0].row;
    nr[2] = 777;
    ASSERT_TRUE(t->UpdateRows(upd, {nr}, nullptr).ok());
    ASSERT_TRUE(t->DeleteRows(del, nullptr).ok());
  }
  Database db2;
  ASSERT_TRUE(db2.OpenDurability(dir, DurabilityMode::kCommit).ok());
  Table* t = db2.GetTable("t");
  bool found7 = false, found9 = false;
  t->ScanAll(
      [&](int64_t rid, const int64_t* row) {
        if (row[0] == 7) {
          found7 = true;
          EXPECT_EQ(row[2], 777);
          EXPECT_EQ(rid, updated_rid);
        }
        if (row[0] == 9) found9 = true;
        return true;
      },
      nullptr);
  EXPECT_TRUE(found7);
  EXPECT_FALSE(found9);
}

TEST_F(RecoveryTest, ReorgIsCrashAtomic) {
  const std::string dir = FreshDir("reorg");
  uint64_t rows_before = 0;
  {
    auto db = MakeDurable(dir, DurabilityMode::kCommit, 300,
                          PrimaryKind::kColumnStore);
    Table* t = db->GetTable("t");
    // Churn the delete buffer, then run the tuple mover. The reorg logs a
    // self-committed record BEFORE mutating, so replay reproduces either
    // the pre- or post-mover layout, never a torn mix.
    std::vector<RowRef> del;
    t->ScanAll(
        [&](int64_t rid, const int64_t* row) {
          if (row[0] % 10 == 0) del.push_back({rid, PackedRow(row, row + 3)});
          return true;
        },
        nullptr);
    ASSERT_TRUE(t->DeleteRows(del, nullptr).ok());
    ASSERT_TRUE(t->ReorganizeColumnstores().ok());
    rows_before = t->num_rows();
  }
  Database db2;
  ASSERT_TRUE(db2.OpenDurability(dir, DurabilityMode::kCommit).ok());
  Table* t = db2.GetTable("t");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->num_rows(), rows_before);
  const std::set<int64_t> vals = Col0Values(t);
  EXPECT_FALSE(vals.count(0));
  EXPECT_FALSE(vals.count(290));
  EXPECT_TRUE(vals.count(1));
}

TEST_F(RecoveryTest, RedoFailpointSurfacesAndRetrySucceeds) {
  const std::string dir = FreshDir("redofp");
  {
    auto db = MakeDurable(dir, DurabilityMode::kCommit, 20,
                          PrimaryKind::kHeap);
    Table* t = db->GetTable("t");
    PackedRow p = t->PackRow(
        {Value::Int64(555), Value::String("x"), Value::Int64(5)});
    ASSERT_TRUE(t->InsertPacked(p, nullptr).ok());
  }
  FailPoints::Instance().Arm("recovery.redo",
                             FailSpec::OneShot(Code::kIoError));
  {
    Database broken;
    EXPECT_FALSE(broken.OpenDurability(dir, DurabilityMode::kCommit).ok());
  }
  FailPoints::Instance().DisarmAll();
  Database db2;
  ASSERT_TRUE(db2.OpenDurability(dir, DurabilityMode::kCommit).ok());
  EXPECT_TRUE(Col0Values(db2.GetTable("t")).count(555));
}

TEST_F(RecoveryTest, CheckpointFailpointLeavesPreviousCheckpointValid) {
  const std::string dir = FreshDir("ckptfp");
  {
    auto db = MakeDurable(dir, DurabilityMode::kCommit, 30,
                          PrimaryKind::kHeap);
    Table* t = db->GetTable("t");
    PackedRow p = t->PackRow(
        {Value::Int64(9999), Value::String("y"), Value::Int64(9)});
    ASSERT_TRUE(t->InsertPacked(p, nullptr).ok());
    FailPoints::Instance().Arm("wal.checkpoint",
                               FailSpec::Always(Code::kIoError));
    EXPECT_FALSE(db->Checkpoint().ok());
    FailPoints::Instance().DisarmAll();
  }
  // The failed checkpoint must not have damaged the (old checkpoint +
  // log) pair: recovery sees the bulk load AND the logged insert.
  Database db2;
  ASSERT_TRUE(db2.OpenDurability(dir, DurabilityMode::kCommit).ok());
  Table* t = db2.GetTable("t");
  EXPECT_EQ(Col0Values(t).count(9999), 1u);
  EXPECT_EQ(t->num_rows(), 31u);
}

TEST_F(RecoveryTest, GroupModeEndToEnd) {
  const std::string dir = FreshDir("groupdb");
  {
    auto db = MakeDurable(dir, DurabilityMode::kGroup, 50,
                          PrimaryKind::kBTree);
    Table* t = db->GetTable("t");
    for (int i = 0; i < 20; ++i) {
      PackedRow p = t->PackRow({Value::Int64(1000 + i),
                                Value::String("g" + std::to_string(i)),
                                Value::Int64(i)});
      ASSERT_TRUE(t->InsertPacked(p, nullptr).ok());
    }
  }
  Database db2;
  ASSERT_TRUE(db2.OpenDurability(dir, DurabilityMode::kGroup).ok());
  Table* t = db2.GetTable("t");
  const std::set<int64_t> vals = Col0Values(t);
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(vals.count(1000 + i)) << i;
}

TEST_F(WalTest, GroupCommitRetriesAfterTransientFsyncFault) {
  const std::string dir = FreshDir("groupretry");
  WalManager wal(dir, DurabilityMode::kGroup);
  ASSERT_TRUE(wal.Open(1, 1).ok());
  const uint64_t txn = wal.AllocTxnId();
  WalRecord r = MakeInsert(txn, 1, 0, 0);
  ASSERT_TRUE(wal.Append(&r).ok());
  // One injected fsync fault: the writer's first batch attempt fails, the
  // parked committer keeps waiting, and the retry on the next window makes
  // the commit durable. durable_lsn never covers an unsynced range.
  FailPoints::Instance().Arm("wal.fsync", FailSpec::OneShot(Code::kIoError));
  EXPECT_TRUE(wal.Commit(txn).ok());
  EXPECT_GE(wal.durable_lsn(), r.lsn + 1);  // insert + commit both synced
  FailPoints::Instance().DisarmAll();
}

// The HIGH-severity atomicity hole: a fuzzy checkpoint that captures an
// in-flight transaction's in-place effects advances applied_lsn past them,
// so redo skips them — recovery must reverse them from the logged images
// instead (insert deleted, update restored, delete resurrected).
TEST_F(RecoveryTest, CheckpointedLoserEffectsRollBackOnRecovery) {
  for (PrimaryKind kind :
       {PrimaryKind::kHeap, PrimaryKind::kBTree, PrimaryKind::kColumnStore}) {
    const std::string dir =
        FreshDir("fuzzyloser" + std::to_string(static_cast<int>(kind)));
    {
      auto db = MakeDurable(dir, DurabilityMode::kCommit, 50, kind);
      Table* t = db->GetTable("t");
      const uint64_t orphan = db->wal()->AllocTxnId();
      // Uncommitted insert, update (k=3: v 30 -> 999), delete (k=9).
      PackedRow ghost = t->PackRow(
          {Value::Int64(300000), Value::String("ghost"), Value::Int64(3)});
      ASSERT_TRUE(t->InsertPacked(ghost, nullptr, nullptr, orphan).ok());
      std::vector<RowRef> upd, del;
      t->ScanAll(
          [&](int64_t rid, const int64_t* row) {
            if (row[0] == 3) upd.push_back({rid, PackedRow(row, row + 3)});
            if (row[0] == 9) del.push_back({rid, PackedRow(row, row + 3)});
            return true;
          },
          nullptr);
      ASSERT_EQ(upd.size(), 1u);
      ASSERT_EQ(del.size(), 1u);
      PackedRow nr = upd[0].row;
      nr[2] = 999;
      ASSERT_TRUE(t->UpdateRows(upd, {nr}, nullptr, orphan).ok());
      ASSERT_TRUE(t->DeleteRows(del, nullptr, orphan).ok());
      // The fuzzy checkpoint captures all three uncommitted effects in
      // place; the oldest-active horizon keeps their records in the log.
      ASSERT_TRUE(db->Checkpoint().ok());
      // kill -9 before the transaction resolves.
    }
    for (int round = 0; round < 2; ++round) {
      Database db2;
      RecoveryStats stats;
      ASSERT_TRUE(db2.OpenDurability(dir, DurabilityMode::kCommit,
                                     WalOptions(), &stats)
                      .ok());
      Table* t = db2.GetTable("t");
      ASSERT_NE(t, nullptr);
      bool saw3 = false, saw9 = false;
      std::set<int64_t> vals;
      t->ScanAll(
          [&](int64_t, const int64_t* row) {
            vals.insert(row[0]);
            if (row[0] == 3) {
              saw3 = true;
              EXPECT_EQ(row[2], 30) << "loser update not rolled back";
            }
            if (row[0] == 9) saw9 = true;
            return true;
          },
          nullptr);
      EXPECT_FALSE(vals.count(300000)) << "checkpointed loser insert survived";
      EXPECT_TRUE(saw3) << "updated row vanished";
      EXPECT_TRUE(saw9) << "loser delete not resurrected";
      EXPECT_EQ(vals.size(), 50u);
      EXPECT_GE(stats.undo_records, 3u) << "kind=" << static_cast<int>(kind)
                                        << " round=" << round;
    }
  }
}

TEST_F(RecoveryTest, CheckpointSucceedsUnderConcurrentDml) {
  const std::string dir = FreshDir("ckptconc");
  {
    auto db = MakeDurable(dir, DurabilityMode::kGroup, 10, PrimaryKind::kHeap);
    Table* t = db->GetTable("t");
    std::atomic<bool> stop{false};
    std::atomic<int> inserted{0};
    std::thread writer([&] {
      for (int i = 0; !stop.load(); ++i) {
        PackedRow p = t->PackRow({Value::Int64(400000 + i),
                                  Value::String("c" + std::to_string(i % 5)),
                                  Value::Int64(i)});
        std::unique_lock<FairSharedMutex> latch(t->phys_latch());
        if (!t->InsertPacked(p, nullptr).ok()) break;
        inserted.fetch_add(1);
      }
    });
    // Group mode keeps durable_lsn lagging appends, so DML racing the
    // snapshot used to trip the WAL-rule check for extents the snapshot
    // never captured. Every checkpoint must succeed.
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(db->Checkpoint().ok()) << "checkpoint " << i;
    }
    stop.store(true);
    writer.join();
    ASSERT_GT(inserted.load(), 0);
  }
  Database db2;
  ASSERT_TRUE(db2.OpenDurability(dir, DurabilityMode::kGroup).ok());
  Table* t = db2.GetTable("t");
  ASSERT_NE(t, nullptr);
  // Everything self-committed before the clean shutdown is recovered:
  // post-snapshot dirty marks were carried forward, not dropped.
  EXPECT_GE(Col0Values(t).size(), 10u);
}

TEST_F(RecoveryTest, TableCreatedAfterCheckpointSurvivesCrash) {
  const std::string dir = FreshDir("latetable");
  {
    auto db = MakeDurable(dir, DurabilityMode::kCommit, 10, PrimaryKind::kHeap);
    // DDL self-checkpoints, so committed DML against the new table is
    // replayable even though the crash strikes before any manual
    // checkpoint.
    auto t2 = db->CreateTable("late", DemoSchema());
    ASSERT_TRUE(t2.ok());
    PackedRow p = t2.value()->PackRow(
        {Value::Int64(42), Value::String("kept"), Value::Int64(7)});
    ASSERT_TRUE(t2.value()->InsertPacked(p, nullptr).ok());
    // kill -9.
  }
  Database db2;
  RecoveryStats stats;
  ASSERT_TRUE(
      db2.OpenDurability(dir, DurabilityMode::kCommit, WalOptions(), &stats)
          .ok());
  Table* late = db2.GetTable("late");
  ASSERT_NE(late, nullptr) << "table created after checkpoint lost";
  EXPECT_TRUE(Col0Values(late).count(42)) << "committed insert dropped";
  EXPECT_EQ(stats.skipped_records, 0u);
  EXPECT_TRUE(Col0Values(db2.GetTable("t")).count(5));
}

}  // namespace
}  // namespace hd
