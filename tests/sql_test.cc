// SQL parser tests: parsing, name resolution, error reporting, and
// end-to-end execution of parsed statements.
#include <gtest/gtest.h>

#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "sql/parser.h"

namespace hd {
namespace {

class SqlTest : public ::testing::Test {
 protected:
  SqlTest() {
    auto sales = db_.CreateTable(
        "sales", Schema({{"region", ValueType::kString, 8},
                         {"day", ValueType::kInt32, 0},
                         {"units", ValueType::kInt32, 0},
                         {"revenue", ValueType::kDouble, 0},
                         {"store_id", ValueType::kInt64, 0}}));
    static const char* kRegions[] = {"east", "north", "south", "west"};
    std::vector<Row> rows;
    for (int i = 0; i < 4000; ++i) {
      rows.push_back({Value::String(kRegions[i % 4]), Value::Int32(i % 100),
                      Value::Int32(1 + i % 5), Value::Double(10.0 + i % 50),
                      Value::Int64(i % 10)});
    }
    sales.value()->BulkLoad(rows);
    auto stores = db_.CreateTable(
        "stores", Schema({{"id", ValueType::kInt64, 0},
                          {"city", ValueType::kString, 8}}));
    std::vector<Row> srows;
    for (int i = 0; i < 10; ++i) {
      srows.push_back({Value::Int64(i),
                       Value::String(i < 5 ? "springfield" : "shelbyville")});
    }
    stores.value()->BulkLoad(srows);
  }

  Result<Query> Parse(const std::string& sql) { return ParseSql(db_, sql); }

  QueryResult Exec(const std::string& sql) {
    auto q = Parse(sql);
    EXPECT_TRUE(q.ok()) << sql << ": " << q.status().ToString();
    Optimizer opt(&db_);
    auto plan = opt.Plan(*q, Configuration::FromCatalog(db_), {});
    EXPECT_TRUE(plan.ok());
    ExecContext ctx;
    ctx.db = &db_;
    Executor ex(ctx);
    QueryResult r = ex.Execute(*q, plan->plan);
    EXPECT_TRUE(r.ok()) << sql << ": " << r.status.ToString();
    return r;
  }

  Database db_;
};

TEST_F(SqlTest, SimpleAggregate) {
  QueryResult r = Exec("SELECT count(*), sum(units) FROM sales");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].i64(), 4000);
  int64_t expect = 0;
  for (int i = 0; i < 4000; ++i) expect += 1 + i % 5;
  EXPECT_EQ(r.rows[0][1].i64(), expect);
}

TEST_F(SqlTest, WhereConjunction) {
  QueryResult r = Exec(
      "SELECT count(*) FROM sales WHERE region = 'west' AND day < 10");
  int64_t expect = 0;
  for (int i = 0; i < 4000; ++i) {
    if (i % 4 == 3 && i % 100 < 10) ++expect;
  }
  EXPECT_EQ(r.rows[0][0].i64(), expect);
}

TEST_F(SqlTest, BetweenAndComparisons) {
  QueryResult r =
      Exec("SELECT count(*) FROM sales WHERE day BETWEEN 10 AND 19");
  EXPECT_EQ(r.rows[0][0].i64(), 400);
  QueryResult r2 = Exec("SELECT count(*) FROM sales WHERE day >= 90");
  EXPECT_EQ(r2.rows[0][0].i64(), 400);
}

TEST_F(SqlTest, GroupByOrderBy) {
  QueryResult r = Exec(
      "SELECT region, sum(revenue) FROM sales GROUP BY region ORDER BY region");
  ASSERT_EQ(r.rows.size(), 4u);
  EXPECT_EQ(r.rows[0][0].str(), "east");
  EXPECT_EQ(r.rows[3][0].str(), "west");
}

TEST_F(SqlTest, ArithmeticAggregate) {
  QueryResult r =
      Exec("SELECT sum(revenue * (1 - 0.1)) FROM sales WHERE day = 0");
  double expect = 0;
  for (int i = 0; i < 4000; ++i) {
    if (i % 100 == 0) expect += (10.0 + i % 50) * 0.9;
  }
  EXPECT_NEAR(r.rows[0][0].f64(), expect, 1e-6);
}

TEST_F(SqlTest, JoinWithQualifiedNames) {
  QueryResult r = Exec(
      "SELECT count(*) FROM sales JOIN stores ON sales.store_id = stores.id "
      "WHERE stores.city = 'springfield'");
  int64_t expect = 0;
  for (int i = 0; i < 4000; ++i) {
    if (i % 10 < 5) ++expect;
  }
  EXPECT_EQ(r.rows[0][0].i64(), expect);
}

TEST_F(SqlTest, GroupByDimColumn) {
  QueryResult r = Exec(
      "SELECT city, count(*) FROM sales JOIN stores ON store_id = id "
      "GROUP BY city ORDER BY city");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].str(), "shelbyville");
  EXPECT_EQ(r.rows[1][0].str(), "springfield");
}

TEST_F(SqlTest, ProjectionWithLimit) {
  QueryResult r =
      Exec("SELECT day, units FROM sales WHERE region = 'east' LIMIT 7");
  EXPECT_EQ(r.row_count, 7u);
  ASSERT_EQ(r.rows.size(), 7u);
  EXPECT_EQ(r.rows[0].size(), 2u);
}

TEST_F(SqlTest, SelectStar) {
  QueryResult r = Exec("SELECT * FROM sales LIMIT 3");
  EXPECT_EQ(r.rows[0].size(), 5u);
}

TEST_F(SqlTest, UpdateAddAndAssign) {
  QueryResult r = Exec("UPDATE sales SET revenue = revenue + 5 WHERE day = 1");
  EXPECT_EQ(r.affected_rows, 40u);
  QueryResult r2 = Exec("UPDATE sales SET units = 99 WHERE day = 1 LIMIT 10");
  EXPECT_EQ(r2.affected_rows, 10u);
  QueryResult check = Exec("SELECT count(*) FROM sales WHERE units = 99");
  EXPECT_EQ(check.rows[0][0].i64(), 10);
}

TEST_F(SqlTest, DeleteAndInsert) {
  QueryResult d = Exec("DELETE FROM sales WHERE day = 42");
  EXPECT_EQ(d.affected_rows, 40u);
  QueryResult i = Exec(
      "INSERT INTO sales VALUES ('east', 42, 3, 19.5, 2), "
      "('west', 42, 1, 7.25, 4)");
  EXPECT_EQ(i.affected_rows, 2u);
  QueryResult c = Exec("SELECT count(*) FROM sales WHERE day = 42");
  EXPECT_EQ(c.rows[0][0].i64(), 2);
}

TEST_F(SqlTest, MinMaxAvg) {
  QueryResult r =
      Exec("SELECT min(day), max(day), avg(units) FROM sales");
  EXPECT_EQ(r.rows[0][0].i32(), 0);
  EXPECT_EQ(r.rows[0][1].i32(), 99);
  EXPECT_NEAR(r.rows[0][2].f64(), 3.0, 0.01);
}

// ---- error reporting ----

TEST_F(SqlTest, ErrorUnknownTable) {
  auto q = Parse("SELECT count(*) FROM nope");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("unknown table"), std::string::npos);
}

TEST_F(SqlTest, ErrorUnknownColumn) {
  auto q = Parse("SELECT bogus FROM sales");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("unknown column"), std::string::npos);
}

TEST_F(SqlTest, ErrorAmbiguousColumn) {
  // Both tables would need a shared name; create the ambiguity via a join
  // against a table that also has a 'day' column.
  auto extra = db_.CreateTable("days", Schema({{"day", ValueType::kInt32, 0}}));
  extra.value()->BulkLoad({{Value::Int32(1)}});
  auto q = Parse(
      "SELECT count(*) FROM sales JOIN days ON sales.day = days.day "
      "WHERE day = 3");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("ambiguous"), std::string::npos);
}

TEST_F(SqlTest, ErrorBadSyntax) {
  EXPECT_FALSE(Parse("SELEKT * FROM sales").ok());
  EXPECT_FALSE(Parse("SELECT FROM sales").ok());
  EXPECT_FALSE(Parse("SELECT count(*) FROM sales WHERE day !! 3").ok());
  EXPECT_FALSE(Parse("INSERT INTO sales VALUES (1)").ok());  // arity
}

TEST_F(SqlTest, ErrorMessageHasPosition) {
  auto q = Parse("SELECT count(*) FROM sales WHERE day <> 3");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("position"), std::string::npos);
}

}  // namespace
}  // namespace hd
