// Unit tests for the common module: values, packing, schema, RNG, metrics.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/metrics.h"
#include "common/packed.h"
#include "common/rng.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/value.h"

namespace hd {
namespace {

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  Status nf = Status::NotFound("x");
  EXPECT_FALSE(nf.ok());
  EXPECT_TRUE(nf.IsNotFound());
  EXPECT_EQ(nf.ToString(), "NotFound: x");
  Status ab = Status::Aborted("deadlock");
  EXPECT_TRUE(ab.IsAborted());
}

TEST(ResultTest, ValueAndError) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  Result<int> e(Status::InvalidArgument("bad"));
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), Code::kInvalidArgument);
}

TEST(ValueTest, CompareNumeric) {
  EXPECT_LT(Value::Int64(1).Compare(Value::Int64(2)), 0);
  EXPECT_EQ(Value::Int64(5).Compare(Value::Int32(5)), 0);
  EXPECT_GT(Value::Double(2.5).Compare(Value::Int64(2)), 0);
  EXPECT_LT(Value::Null().Compare(Value::Int64(0)), 0);  // NULL sorts first
}

TEST(ValueTest, CompareStrings) {
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")), 0);
  EXPECT_EQ(Value::String("x").Compare(Value::String("x")), 0);
}

TEST(ValueTest, HashConsistentAcrossIntTypes) {
  EXPECT_EQ(Value::Int32(7).Hash(), Value::Int64(7).Hash());
  EXPECT_EQ(Value::Double(7.0).Hash(), Value::Int64(7).Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int64(12).ToString(), "12");
  EXPECT_EQ(Value::String("hi").ToString(), "hi");
}

TEST(PackedTest, DoubleRoundTrip) {
  for (double d : {0.0, 1.0, -1.0, 3.14159, -2.71828, 1e300, -1e300, 1e-300,
                   -1e-300, 42.5}) {
    EXPECT_DOUBLE_EQ(UnpackDouble(PackDouble(d)), d) << d;
  }
}

TEST(PackedTest, DoubleOrderPreserving) {
  Rng rng(3);
  std::vector<double> ds;
  for (int i = 0; i < 1000; ++i) ds.push_back(rng.UniformReal(-1e6, 1e6));
  ds.push_back(0.0);
  ds.push_back(-0.5);
  std::sort(ds.begin(), ds.end());
  for (size_t i = 1; i < ds.size(); ++i) {
    if (ds[i - 1] == ds[i]) continue;
    EXPECT_LT(PackDouble(ds[i - 1]), PackDouble(ds[i]))
        << ds[i - 1] << " vs " << ds[i];
  }
}

TEST(PackedTest, ComparePacked) {
  int64_t a[] = {1, 2, 3};
  int64_t b[] = {1, 2, 4};
  EXPECT_LT(ComparePacked(a, b, 3), 0);
  EXPECT_EQ(ComparePacked(a, b, 2), 0);
  EXPECT_GT(ComparePacked(b, a, 3), 0);
}

TEST(SchemaTest, FindAndWidth) {
  Schema s({{"a", ValueType::kInt64, 0},
            {"b", ValueType::kDouble, 0},
            {"c", ValueType::kString, 20}});
  EXPECT_EQ(s.num_columns(), 3);
  EXPECT_EQ(s.Find("b"), 1);
  EXPECT_EQ(s.Find("zz"), -1);
  EXPECT_EQ(s.RowWidth(), 8 + 8 + 20);
  Schema p = s.Project({2, 0});
  EXPECT_EQ(p.column(0).name, "c");
  EXPECT_EQ(p.column(1).name, "a");
}

TEST(RngTest, Deterministic) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000), b.Uniform(0, 1000));
  }
}

TEST(RngTest, UniformBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, ZipfSkewed) {
  Rng rng(1);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) counts[rng.Zipf(100, 0.9)]++;
  // Rank 0 should be much more popular than rank 50.
  EXPECT_GT(counts[0], counts[50] * 3);
}

TEST(MetricsTest, MergeAndExec) {
  QueryMetrics a, b;
  a.cpu_ns = 2'000'000;  // 2 ms
  a.sim_io_ns = 1'000'000;
  b.cpu_ns = 1'000'000;
  b.rows_scanned = 10;
  a.Merge(b);
  EXPECT_EQ(a.rows_scanned.load(), 10u);
  EXPECT_DOUBLE_EQ(a.cpu_ms(), 3.0);
  a.dop = 1;
  EXPECT_DOUBLE_EQ(a.exec_ms(), 4.0);
  a.dop = 2;
  EXPECT_DOUBLE_EQ(a.exec_ms(), 2.0);
}

TEST(MetricsTest, PeakMemoryMonotone) {
  QueryMetrics m;
  m.UpdatePeakMemory(100);
  m.UpdatePeakMemory(50);
  EXPECT_EQ(m.peak_memory_bytes.load(), 100u);
  m.UpdatePeakMemory(200);
  EXPECT_EQ(m.peak_memory_bytes.load(), 200u);
}

}  // namespace
}  // namespace hd
