// Cooperative shared scans + admission control (exec/scan_scheduler.h,
// exec/admission.h).
//
// The core contract under test: routing a SELECT through the shared-scan
// scheduler must be INVISIBLE in its results — any set of concurrent
// queries, attaching and detaching at arbitrary pass positions, over a
// table with compressed groups, delta rows, and deleted rows, returns
// exactly what a private scan returns. Failure of one consumer (injected
// at the csi.shared_consume seam) must not corrupt or stall the others.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/latch.h"
#include "common/metrics.h"
#include "exec/admission.h"
#include "exec/executor.h"
#include "exec/scan_scheduler.h"
#include "optimizer/optimizer.h"
#include "txn/transaction.h"
#include "workload/micro.h"

namespace hd {
namespace {

// 400k rows / 2^17-row groups = 4 row groups, so circular passes have
// meaningful length and mid-pass attach positions differ across threads.
constexpr uint64_t kRows = 400'000;
constexpr int64_t kMaxV = 9999;

Table* BuildCsiTable(Database* db, const std::string& name) {
  MicroOptions mo;
  mo.rows = kRows;
  mo.max_value = kMaxV;
  Table* t = MakeUniformIntTable(db, name, 2, mo);
  if (t == nullptr || !t->SetPrimary(PrimaryKind::kColumnStore).ok()) {
    return nullptr;
  }
  return t;
}

QueryResult ExecQ(Database* db, const Query& q, ScanScheduler* sched,
                AdmissionController* adm = nullptr) {
  Optimizer opt(db);
  Configuration cfg = Configuration::FromCatalog(*db);
  PlanOptions popts;
  popts.max_dop = 2;
  auto plan = opt.Plan(q, cfg, popts);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  ExecContext ctx;
  ctx.db = db;
  ctx.max_dop = 2;
  ctx.scan_scheduler = sched;
  ctx.admission = adm;
  Executor ex(ctx);
  return ex.Execute(q, plan->plan);
}

/// Add delta rows and delete a value so shared passes must merge the
/// delete snapshot and each consumer must privately scan the delta store.
void MutateTable(Database* db, const std::string& table) {
  Query ins;
  ins.kind = Query::Kind::kInsert;
  ins.base.table = table;
  for (int i = 0; i < 500; ++i) {
    ins.insert_rows.push_back(
        {Value::Int64(i % (kMaxV + 1)), Value::Int64(1000 + i)});
  }
  QueryResult ri = ExecQ(db, ins, nullptr);
  ASSERT_TRUE(ri.ok()) << ri.status.ToString();
  Query del;
  del.kind = Query::Kind::kDelete;
  del.base.table = table;
  del.base.preds.push_back(Pred::Eq(0, Value::Int64(7)));
  QueryResult rd = ExecQ(db, del, nullptr);
  ASSERT_TRUE(rd.ok()) << rd.status.ToString();
  EXPECT_GT(rd.affected_rows, 0u);
}

// ---------------------------------------------------------------------
// Result equivalence: shared == private, including delta + deletes.
// ---------------------------------------------------------------------

TEST(SharedScanTest, ConcurrentSharedQueriesMatchPrivateScans) {
  Database db;
  ASSERT_NE(BuildCsiTable(&db, "t"), nullptr);
  MutateTable(&db, "t");

  // Staggered, overlapping BETWEEN ranges: different selectivities mean
  // different consume speeds, so attach positions diverge mid-pass.
  struct Case {
    int64_t lo, hi;
  };
  const std::vector<Case> cases = {{0, 9999},   {0, 4999},   {2500, 7499},
                                   {5000, 9999}, {100, 300},  {7, 7},
                                   {9000, 9999}, {4000, 6000}};
  std::vector<int64_t> expected(cases.size());
  for (size_t i = 0; i < cases.size(); ++i) {
    QueryResult r =
        ExecQ(&db, MicroQ1SumOther("t", cases[i].lo, cases[i].hi), nullptr);
    ASSERT_TRUE(r.ok()) << r.status.ToString();
    expected[i] = r.rows[0][0].i64();
  }

  ScanScheduler sched;
  // Two rounds so later queries join passes the first round started.
  for (int round = 0; round < 2; ++round) {
    std::vector<int64_t> got(cases.size());
    std::vector<Status> st(cases.size());
    std::vector<std::thread> threads;
    for (size_t i = 0; i < cases.size(); ++i) {
      threads.emplace_back([&, i] {
        QueryResult r =
            ExecQ(&db, MicroQ1SumOther("t", cases[i].lo, cases[i].hi), &sched);
        st[i] = r.status;
        if (r.ok()) got[i] = r.rows[0][0].i64();
      });
    }
    for (auto& t : threads) t.join();
    for (size_t i = 0; i < cases.size(); ++i) {
      ASSERT_TRUE(st[i].ok()) << st[i].ToString();
      EXPECT_EQ(got[i], expected[i])
          << "case " << i << " [" << cases[i].lo << "," << cases[i].hi << "]";
    }
  }
  EXPECT_GE(sched.attaches(), 2 * cases.size());
  EXPECT_GE(sched.passes_started(), 1u);
}

// ---------------------------------------------------------------------
// Attach/detach mid-pass: early-stopping consumers (LIMIT) alongside
// full scans must neither corrupt nor stall the others.
// ---------------------------------------------------------------------

TEST(SharedScanTest, EarlyStopDetachLeavesOthersCorrect) {
  Database db;
  ASSERT_NE(BuildCsiTable(&db, "t"), nullptr);

  Query full = MicroQ1SumOther("t", 0, kMaxV);
  QueryResult ref = ExecQ(&db, full, nullptr);
  ASSERT_TRUE(ref.ok());
  const int64_t expected = ref.rows[0][0].i64();

  Query limited;
  limited.base.table = "t";
  limited.base.preds.push_back(
      Pred::Between(0, Value::Int64(0), Value::Int64(kMaxV)));
  limited.select_cols = {ColRef{0, 1}};
  limited.limit = 10;

  ScanScheduler sched;
  std::vector<std::thread> threads;
  std::atomic<int> bad{0};
  for (int i = 0; i < 6; ++i) {
    threads.emplace_back([&, i] {
      if (i % 2 == 0) {
        // Early-stopper: detaches after ~10 rows of the first group.
        QueryResult r = ExecQ(&db, limited, &sched);
        if (!r.ok() || r.rows.size() != 10) bad.fetch_add(1);
      } else {
        QueryResult r = ExecQ(&db, full, &sched);
        if (!r.ok() || r.rows[0][0].i64() != expected) bad.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(bad.load(), 0);
}

// ---------------------------------------------------------------------
// Predicate isolation: consumers sharing a pass apply their OWN
// predicates to the shared decoded image.
// ---------------------------------------------------------------------

TEST(SharedScanTest, PredicateIsolationAcrossConsumers) {
  Database db;
  ASSERT_NE(BuildCsiTable(&db, "t"), nullptr);

  const int64_t r1 = ExecQ(&db, MicroQ1SumOther("t", 0, 99), nullptr)
                         .rows[0][0].i64();
  const int64_t r2 = ExecQ(&db, MicroQ1SumOther("t", 9900, 9999), nullptr)
                         .rows[0][0].i64();
  ASSERT_NE(r1, r2);  // disjoint ranges over uniform data

  for (int round = 0; round < 3; ++round) {
    ScanScheduler sched;
    int64_t g1 = 0, g2 = 0;
    std::thread a([&] {
      g1 = ExecQ(&db, MicroQ1SumOther("t", 0, 99), &sched).rows[0][0].i64();
    });
    std::thread b([&] {
      g2 = ExecQ(&db, MicroQ1SumOther("t", 9900, 9999), &sched).rows[0][0].i64();
    });
    a.join();
    b.join();
    EXPECT_EQ(g1, r1);
    EXPECT_EQ(g2, r2);
  }
}

// ---------------------------------------------------------------------
// Fault injection: one consumer dying mid-pass must not corrupt or stall
// the rest, and must surface a typed error.
// ---------------------------------------------------------------------

TEST(SharedScanTest, FailpointAbortIsolatesVictim) {
  Database db;
  ASSERT_NE(BuildCsiTable(&db, "t"), nullptr);

  Query full = MicroQ1SumOther("t", 0, kMaxV);
  const int64_t expected = ExecQ(&db, full, nullptr).rows[0][0].i64();

  ScopedFailPoint fp("csi.shared_consume",
                     FailSpec::OneShot(Code::kIoError, "injected abort"));
  ScanScheduler sched;
  std::atomic<int> failed{0}, wrong{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 6; ++i) {
    threads.emplace_back([&] {
      QueryResult r = ExecQ(&db, full, &sched);
      if (!r.ok()) {
        // The victim's error must be the injected one, well-typed.
        if (r.status.IsIoError()) failed.fetch_add(1);
        else wrong.fetch_add(1);
      } else if (r.rows[0][0].i64() != expected) {
        wrong.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failed.load(), 1);  // exactly the one-shot victim
  EXPECT_EQ(wrong.load(), 0);

  // The pass state must be reusable after the abort: a fresh query works.
  QueryResult after = ExecQ(&db, full, &sched);
  ASSERT_TRUE(after.ok()) << after.status.ToString();
  EXPECT_EQ(after.rows[0][0].i64(), expected);
}

// ---------------------------------------------------------------------
// Admission controller: slots, grants, timeout, shed — unit level.
// ---------------------------------------------------------------------

TEST(AdmissionTest, MemoryGrantAccounting) {
  AdmissionOptions ao;
  ao.max_concurrent = 4;
  ao.max_memory_grant = 100;
  ao.queue_timeout_ms = 50;
  AdmissionController ac(ao);

  AdmissionController::Ticket t1;
  ASSERT_TRUE(ac.Admit(60, &t1).ok());
  EXPECT_EQ(ac.grant_in_use(), 60u);

  // 60 + 60 > 100: second query must time out in the queue, typed.
  AdmissionController::Ticket t2;
  Status s = ac.Admit(60, &t2).ok() ? Status::OK()
                                    : Status::ResourceExhausted("x");
  {
    AdmissionController::Ticket tx;
    Status direct = ac.Admit(60, &tx);
    EXPECT_FALSE(direct.ok());
    EXPECT_TRUE(direct.IsResourceExhausted()) << direct.ToString();
  }
  (void)s;

  // Small grants still fit alongside.
  AdmissionController::Ticket t3;
  ASSERT_TRUE(ac.Admit(30, &t3).ok());
  EXPECT_EQ(ac.grant_in_use(), 90u);

  t1.Release();
  EXPECT_EQ(ac.grant_in_use(), 30u);
  AdmissionController::Ticket t4;
  ASSERT_TRUE(ac.Admit(60, &t4).ok());

  // A grant larger than the whole budget is force-admitted when idle
  // (it could otherwise never run).
  t3.Release();
  t4.Release();
  EXPECT_EQ(ac.running(), 0);
  AdmissionController::Ticket big;
  ASSERT_TRUE(ac.Admit(1000, &big).ok());
}

TEST(AdmissionTest, QueueTimeoutIsTypedAndCounted) {
  AdmissionOptions ao;
  ao.max_concurrent = 1;
  ao.queue_timeout_ms = 40;
  AdmissionController ac(ao);

  AdmissionController::Ticket held;
  ASSERT_TRUE(ac.Admit(0, &held).ok());
  AdmissionController::Ticket waiter;
  Status s = ac.Admit(0, &waiter);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsResourceExhausted()) << s.ToString();
  EXPECT_EQ(ac.timeouts(), 1u);
  EXPECT_EQ(ac.queued(), 0);  // timed-out waiter removed itself
}

TEST(AdmissionTest, ShedWhenQueueFull) {
  AdmissionOptions ao;
  ao.max_concurrent = 1;
  ao.max_queue_depth = 0;  // any waiter is one too many
  AdmissionController ac(ao);

  AdmissionController::Ticket held;
  ASSERT_TRUE(ac.Admit(0, &held).ok());
  AdmissionController::Ticket shed;
  Status s = ac.Admit(0, &shed);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsResourceExhausted()) << s.ToString();
  EXPECT_EQ(ac.shed(), 1u);
  EXPECT_EQ(ac.timeouts(), 0u);  // shed on arrival, not a timeout
}

// ---------------------------------------------------------------------
// Admission through the executor: the gate bounds real queries.
// ---------------------------------------------------------------------

TEST(AdmissionTest, ExecutorBoundsInFlightAt4xOversubscription) {
  Database db;
  ASSERT_NE(BuildCsiTable(&db, "t"), nullptr);

  AdmissionOptions ao;
  ao.max_concurrent = 2;
  ao.queue_timeout_ms = 30'000;
  AdmissionController ac(ao);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {  // 4x the slot count
    threads.emplace_back([&] {
      for (int j = 0; j < 2; ++j) {
        QueryResult r =
            ExecQ(&db, MicroQ1SumOther("t", 0, kMaxV), nullptr, &ac);
        if (!r.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(ac.admitted(), 16u);
  EXPECT_LE(ac.peak_running(), ao.max_concurrent);
  EXPECT_LE(ac.peak_queued(), ao.max_queue_depth);
}

TEST(AdmissionTest, InTransactionStatementsBypassTheGate) {
  Database db;
  ASSERT_NE(BuildCsiTable(&db, "t"), nullptr);
  TransactionManager txns;

  AdmissionOptions ao;
  ao.max_concurrent = 1;
  AdmissionController ac(ao);
  AdmissionController::Ticket held;
  ASSERT_TRUE(ac.Admit(0, &held).ok());  // gate now "full"

  // An in-transaction SELECT must not queue behind the gate: it may hold
  // locks, and stalling a lock holder behind admission invites deadlocks.
  auto txn = txns.Begin(IsolationLevel::kReadCommitted);
  Query q = MicroQ1SumOther("t", 0, kMaxV);
  Optimizer opt(&db);
  auto plan = opt.Plan(q, Configuration::FromCatalog(db), {});
  ASSERT_TRUE(plan.ok());
  ExecContext ctx;
  ctx.db = &db;
  ctx.txns = &txns;
  ctx.txn = txn.get();
  ctx.admission = &ac;
  Executor ex(ctx);
  QueryResult r = ex.Execute(q, plan->plan);
  EXPECT_TRUE(r.ok()) << r.status.ToString();
  txns.Commit(txn.get());
  EXPECT_EQ(ac.admitted(), 1u);  // only the held ticket; the txn bypassed
}

// Closed-loop readers overlap their shared holds nearly continuously; a
// reader-preferring latch (glibc std::shared_mutex) starves the writer
// outright in that regime, which livelocked the mixed workload's update
// stream the moment concurrent analytic side-streams landed. The
// phys_latch is writer-preferring (common/latch.h) exactly so this
// terminates: once the writer queues, new shared acquisitions block and
// the in-flight readers drain.
TEST(FairLatchTest, WriterNotStarvedByContinuousReaders) {
  FairSharedMutex latch;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int i = 0; i < 3; ++i) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        latch.lock_shared();
        reads.fetch_add(1, std::memory_order_relaxed);
        latch.unlock_shared();
      }
    });
  }
  // Let the readers saturate the latch, then demand it exclusively.
  while (reads.load(std::memory_order_relaxed) < 1000) std::this_thread::yield();
  Timer t;
  for (int w = 0; w < 50; ++w) {
    latch.lock();
    latch.unlock();
  }
  const double writer_ms = t.ElapsedMs();
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : readers) th.join();
  // 50 exclusive acquisitions against 3 saturating readers: seconds would
  // mean starvation; fair queuing keeps each wait to ~one critical section.
  EXPECT_LT(writer_ms, 2000.0) << "writer starved behind continuous readers";
}

}  // namespace
}  // namespace hd
