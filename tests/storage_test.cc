// Unit tests for the storage layer: disk model, buffer pool, heap file.
#include <gtest/gtest.h>

#include "storage/buffer_pool.h"
#include "storage/disk_model.h"
#include "storage/heap_file.h"

namespace hd {
namespace {

TEST(DiskModelTest, SequentialReadCharge) {
  DiskConfig cfg;
  cfg.read_bw_mb_s = 1000;
  cfg.random_latency_ms = 4;
  DiskModel d(cfg);
  QueryMetrics m;
  // 1000 MB at 1000 MB/s = 1 second.
  d.ChargeRead(1000ull << 20, IoPattern::kSequential, &m);
  EXPECT_NEAR(m.sim_io_ms(), 1000.0, 1.0);
  EXPECT_EQ(m.bytes_read.load(), 1000ull << 20);
}

TEST(DiskModelTest, RandomAddsLatency) {
  DiskModel d(DiskConfig{});
  QueryMetrics seq, rnd;
  d.ChargeRead(kPageBytes, IoPattern::kSequential, &seq);
  d.ChargeRead(kPageBytes, IoPattern::kRandom, &rnd);
  EXPECT_GT(rnd.sim_io_ms(), seq.sim_io_ms() + 3.0);
}

TEST(DiskModelTest, WriteSlowerThanRead) {
  DiskModel d(DiskConfig{});
  QueryMetrics r, w;
  d.ChargeRead(100 << 20, IoPattern::kSequential, &r);
  d.ChargeWrite(100 << 20, IoPattern::kSequential, &w);
  EXPECT_GT(w.sim_io_ms(), r.sim_io_ms());
}

TEST(BufferPoolTest, HotAccessFree) {
  DiskModel d;
  BufferPool pool(&d);
  ExtentId e = pool.Register(kPageBytes);
  QueryMetrics m;
  pool.Access(e, IoPattern::kRandom, &m);  // fresh extents are resident
  EXPECT_DOUBLE_EQ(m.sim_io_ms(), 0.0);
  EXPECT_EQ(m.pages_read.load(), 1u);
}

TEST(BufferPoolTest, ColdAccessCharges) {
  DiskModel d;
  BufferPool pool(&d);
  ExtentId e = pool.Register(kPageBytes);
  pool.EvictAll();
  EXPECT_FALSE(pool.IsResident(e));
  QueryMetrics m;
  pool.Access(e, IoPattern::kRandom, &m);
  EXPECT_GT(m.sim_io_ms(), 0.0);
  EXPECT_TRUE(pool.IsResident(e));
  // Second access is a hit.
  QueryMetrics m2;
  pool.Access(e, IoPattern::kRandom, &m2);
  EXPECT_DOUBLE_EQ(m2.sim_io_ms(), 0.0);
}

TEST(BufferPoolTest, CapacityEviction) {
  DiskModel d;
  BufferPool pool(&d, /*capacity=*/4 * kPageBytes);
  std::vector<ExtentId> es;
  for (int i = 0; i < 16; ++i) es.push_back(pool.Register(kPageBytes));
  EXPECT_LE(pool.resident_bytes(), 4 * kPageBytes);
  EXPECT_EQ(pool.total_bytes(), 16 * kPageBytes);
}

TEST(BufferPoolTest, WarmAll) {
  DiskModel d;
  BufferPool pool(&d);
  ExtentId e = pool.Register(kPageBytes);
  pool.EvictAll();
  pool.WarmAll();
  EXPECT_TRUE(pool.IsResident(e));
}

TEST(BufferPoolTest, UnregisterReleasesBytes) {
  DiskModel d;
  BufferPool pool(&d);
  ExtentId e = pool.Register(10 * kPageBytes);
  EXPECT_EQ(pool.total_bytes(), 10 * kPageBytes);
  pool.Unregister(e);
  EXPECT_EQ(pool.total_bytes(), 0u);
}

class HeapFileTest : public ::testing::Test {
 protected:
  HeapFileTest() : pool_(&disk_), heap_(3, &pool_) {}
  DiskModel disk_;
  BufferPool pool_;
  HeapFile heap_;
};

TEST_F(HeapFileTest, AppendFetch) {
  int64_t row[3] = {1, 2, 3};
  uint64_t rid = heap_.Append(row);
  EXPECT_EQ(rid, 0u);
  int64_t out[3];
  ASSERT_TRUE(heap_.Fetch(rid, out, nullptr).ok());
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[2], 3);
}

TEST_F(HeapFileTest, FetchOutOfRange) {
  EXPECT_TRUE(heap_.Fetch(5, nullptr, nullptr).IsNotFound());
}

TEST_F(HeapFileTest, UpdateInPlace) {
  int64_t row[3] = {1, 2, 3};
  uint64_t rid = heap_.Append(row);
  int64_t row2[3] = {9, 9, 9};
  ASSERT_TRUE(heap_.Update(rid, row2, nullptr).ok());
  int64_t out[3];
  ASSERT_TRUE(heap_.Fetch(rid, out, nullptr).ok());
  EXPECT_EQ(out[0], 9);
}

TEST_F(HeapFileTest, DeleteHidesRow) {
  int64_t row[3] = {1, 2, 3};
  uint64_t rid = heap_.Append(row);
  ASSERT_TRUE(heap_.Delete(rid, nullptr).ok());
  int64_t out[3];
  EXPECT_TRUE(heap_.Fetch(rid, out, nullptr).IsNotFound());
  EXPECT_TRUE(heap_.Delete(rid, nullptr).IsNotFound());  // double delete
  EXPECT_EQ(heap_.live_rows(), 0u);
}

TEST_F(HeapFileTest, ScanVisitsLiveRowsInOrder) {
  for (int64_t i = 0; i < 5000; ++i) {
    int64_t row[3] = {i, i * 2, i * 3};
    heap_.Append(row);
  }
  ASSERT_TRUE(heap_.Delete(10, nullptr).ok());
  int64_t expect = 0;
  uint64_t count = 0;
  heap_.Scan(
      [&](uint64_t rid, const int64_t* row) {
        if (expect == 10) ++expect;  // deleted
        EXPECT_EQ(row[0], expect);
        EXPECT_EQ(rid, static_cast<uint64_t>(expect));
        ++expect;
        ++count;
        return true;
      },
      nullptr);
  EXPECT_EQ(count, 4999u);
}

TEST_F(HeapFileTest, ScanRangePartition) {
  for (int64_t i = 0; i < 1000; ++i) {
    int64_t row[3] = {i, 0, 0};
    heap_.Append(row);
  }
  uint64_t count = 0;
  heap_.ScanRange(100, 300,
                  [&](uint64_t, const int64_t*) {
                    ++count;
                    return true;
                  },
                  nullptr);
  EXPECT_EQ(count, 200u);
}

TEST_F(HeapFileTest, ScanEarlyStop) {
  for (int64_t i = 0; i < 100; ++i) {
    int64_t row[3] = {i, 0, 0};
    heap_.Append(row);
  }
  uint64_t count = 0;
  heap_.Scan(
      [&](uint64_t, const int64_t*) {
        ++count;
        return count < 7;
      },
      nullptr);
  EXPECT_EQ(count, 7u);
}

TEST_F(HeapFileTest, ColdScanChargesIo) {
  for (int64_t i = 0; i < 10000; ++i) {
    int64_t row[3] = {i, 0, 0};
    heap_.Append(row);
  }
  pool_.EvictAll();
  QueryMetrics m;
  heap_.Scan([](uint64_t, const int64_t*) { return true; }, &m);
  EXPECT_GT(m.sim_io_ms(), 0.0);
  EXPECT_GT(m.bytes_read.load(), 0u);
  // Hot re-scan: no I/O.
  QueryMetrics m2;
  heap_.Scan([](uint64_t, const int64_t*) { return true; }, &m2);
  EXPECT_DOUBLE_EQ(m2.sim_io_ms(), 0.0);
}

}  // namespace
}  // namespace hd
