// QueryMetrics semantics: Clear, Merge, copy-assignment, peak-memory
// updates, and the per-operator -> query-level rollup contract the
// executor relies on (docs/OBSERVABILITY.md), including merging from
// many threads on the shared pool.
#include <gtest/gtest.h>

#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"

namespace hd {
namespace {

QueryMetrics MakeFilled(uint64_t base) {
  QueryMetrics m;
  m.pages_read = base + 1;
  m.bytes_read = base + 2;
  m.bytes_processed = base + 3;
  m.rows_scanned = base + 4;
  m.rows_output = base + 5;
  m.segments_scanned = base + 6;
  m.segments_skipped = base + 7;
  m.morsels_scheduled = base + 8;
  m.morsels_stolen = base + 9;
  m.runs_evaluated = base + 10;
  m.rows_decoded = base + 11;
  m.sim_io_ns = base + 12;
  m.cpu_ns = base + 13;
  m.peak_memory_bytes = base + 14;
  m.spill_bytes = base + 15;
  m.rows_selected = base + 16;
  m.rows_late_materialized = base + 17;
  m.aggs_pushed_down = base + 18;
  m.hash_probes = base + 19;
  m.dop = 4;
  return m;
}

TEST(QueryMetricsTest, ClearZeroesEverything) {
  QueryMetrics m = MakeFilled(100);
  m.Clear();
  EXPECT_EQ(m.pages_read.load(), 0u);
  EXPECT_EQ(m.bytes_read.load(), 0u);
  EXPECT_EQ(m.bytes_processed.load(), 0u);
  EXPECT_EQ(m.rows_scanned.load(), 0u);
  EXPECT_EQ(m.rows_output.load(), 0u);
  EXPECT_EQ(m.segments_scanned.load(), 0u);
  EXPECT_EQ(m.segments_skipped.load(), 0u);
  EXPECT_EQ(m.morsels_scheduled.load(), 0u);
  EXPECT_EQ(m.morsels_stolen.load(), 0u);
  EXPECT_EQ(m.runs_evaluated.load(), 0u);
  EXPECT_EQ(m.rows_decoded.load(), 0u);
  EXPECT_EQ(m.sim_io_ns.load(), 0u);
  EXPECT_EQ(m.cpu_ns.load(), 0u);
  EXPECT_EQ(m.peak_memory_bytes.load(), 0u);
  EXPECT_EQ(m.spill_bytes.load(), 0u);
  EXPECT_EQ(m.rows_selected.load(), 0u);
  EXPECT_EQ(m.rows_late_materialized.load(), 0u);
  EXPECT_EQ(m.aggs_pushed_down.load(), 0u);
  EXPECT_EQ(m.hash_probes.load(), 0u);
}

TEST(QueryMetricsTest, MergeSumsCountersAndMaxesPeakMemory) {
  QueryMetrics a = MakeFilled(0);
  QueryMetrics b = MakeFilled(1000);
  a.Merge(b);
  EXPECT_EQ(a.pages_read.load(), 1u + 1001u);
  EXPECT_EQ(a.rows_scanned.load(), 4u + 1004u);
  EXPECT_EQ(a.morsels_scheduled.load(), 8u + 1008u);
  EXPECT_EQ(a.cpu_ns.load(), 13u + 1013u);
  EXPECT_EQ(a.spill_bytes.load(), 15u + 1015u);
  EXPECT_EQ(a.rows_selected.load(), 16u + 1016u);
  EXPECT_EQ(a.rows_late_materialized.load(), 17u + 1017u);
  EXPECT_EQ(a.aggs_pushed_down.load(), 18u + 1018u);
  EXPECT_EQ(a.hash_probes.load(), 19u + 1019u);
  // Peak memory is a high-water mark, not additive.
  EXPECT_EQ(a.peak_memory_bytes.load(), 1014u);
}

TEST(QueryMetricsTest, CopyAssignmentReplacesState) {
  QueryMetrics src = MakeFilled(50);
  QueryMetrics dst = MakeFilled(9000);
  dst = src;
  EXPECT_EQ(dst.pages_read.load(), 51u);
  EXPECT_EQ(dst.rows_scanned.load(), 54u);
  EXPECT_EQ(dst.peak_memory_bytes.load(), 64u);
  EXPECT_EQ(dst.dop, 4);
  // Copy, not alias: mutating the copy leaves the source alone.
  dst.pages_read += 1;
  EXPECT_EQ(src.pages_read.load(), 51u);
}

TEST(QueryMetricsTest, CopyConstructionMatchesAssignment) {
  QueryMetrics src = MakeFilled(7);
  QueryMetrics copy(src);
  EXPECT_EQ(copy.rows_scanned.load(), src.rows_scanned.load());
  EXPECT_EQ(copy.peak_memory_bytes.load(), src.peak_memory_bytes.load());
}

TEST(QueryMetricsTest, UpdatePeakMemoryIsMonotonic) {
  QueryMetrics m;
  m.UpdatePeakMemory(100);
  EXPECT_EQ(m.peak_memory_bytes.load(), 100u);
  m.UpdatePeakMemory(50);
  EXPECT_EQ(m.peak_memory_bytes.load(), 100u);
  m.UpdatePeakMemory(200);
  EXPECT_EQ(m.peak_memory_bytes.load(), 200u);
}

// The executor's rollup: every per-operator block merged into one query
// block reproduces the sum of all counter increments, even when the
// operator blocks were written concurrently from pool workers.
TEST(QueryMetricsTest, OperatorRollupUnderThreadPool) {
  constexpr int kOps = 5;
  constexpr uint64_t kMorsels = 400;
  std::vector<OperatorProfile> ops(kOps);
  ThreadPool& pool = ThreadPool::Global();
  for (int o = 0; o < kOps; ++o) {
    pool.ParallelFor(kMorsels, /*max_dop=*/8, [&](int, uint64_t mi) {
      QueryMetrics& m = ops[o].metrics;
      m.rows_scanned += mi;
      m.cpu_ns += 3;
      m.pages_read += 1;
      m.UpdatePeakMemory(mi);
    });
  }
  QueryMetrics total;
  for (const auto& op : ops) total.Merge(op.metrics);
  const uint64_t per_op_rows = kMorsels * (kMorsels - 1) / 2;
  EXPECT_EQ(total.rows_scanned.load(), kOps * per_op_rows);
  EXPECT_EQ(total.cpu_ns.load(), kOps * kMorsels * 3);
  EXPECT_EQ(total.pages_read.load(), kOps * kMorsels);
  EXPECT_EQ(total.peak_memory_bytes.load(), kMorsels - 1);
}

}  // namespace
}  // namespace hd
