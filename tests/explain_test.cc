// EXPLAIN / EXPLAIN ANALYZE and trace export.
//
// The load-bearing check is the attribution contract from
// docs/OBSERVABILITY.md: on the Fig. 1 selectivity query, the per-operator
// data-path counters must sum exactly to the query-level QueryMetrics
// (rollup + zero residual for an untransacted read), including under a
// parallel morsel-driven scan.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <string>
#include <vector>

#include "common/trace.h"
#include "exec/executor.h"
#include "exec/explain.h"
#include "optimizer/optimizer.h"
#include "sql/parser.h"
#include "workload/micro.h"

namespace hd {
namespace {

QueryResult RunQ(Database* db, const Query& q, int max_dop = 4,
                 PhysicalPlan* plan_out = nullptr) {
  Optimizer opt(db);
  Configuration cfg = Configuration::FromCatalog(*db);
  PlanOptions popts;
  popts.max_dop = max_dop;
  auto plan = opt.Plan(q, cfg, popts);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  if (plan_out != nullptr) *plan_out = plan->plan;
  ExecContext ctx;
  ctx.db = db;
  ctx.max_dop = max_dop;
  Executor ex(ctx);
  QueryResult r = ex.Execute(q, plan->plan);
  EXPECT_TRUE(r.ok()) << r.status.ToString() << " plan=" << r.plan_desc;
  return r;
}

/// Sorted 300k-row CSI table: 3 row groups, min/max-prunable on col0.
Table* MakeSortedCsi(Database* db, const std::string& name) {
  MicroOptions mo;
  mo.rows = 300000;
  mo.max_value = 999999;
  mo.sorted_on_col0 = true;
  Table* t = MakeUniformIntTable(db, name, 2, mo);
  EXPECT_NE(t, nullptr);
  EXPECT_TRUE(t->SetPrimary(PrimaryKind::kColumnStore).ok());
  t->Analyze();
  return t;
}

uint64_t SumOps(const QueryResult& r,
                uint64_t (*get)(const QueryMetrics&)) {
  uint64_t s = 0;
  for (const auto& op : r.operators) s += get(op.metrics);
  return s;
}

// ---------------------------------------------------------------------
// Parser: EXPLAIN prefix.
// ---------------------------------------------------------------------

TEST(ExplainParseTest, ExplainModes) {
  Database db;
  MicroOptions mo;
  mo.rows = 100;
  ASSERT_NE(MakeUniformIntTable(&db, "t", 2, mo), nullptr);

  auto plain = ParseSql(db, "SELECT count(*) FROM t");
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_EQ(plain.value().explain, Query::ExplainMode::kNone);

  auto ex = ParseSql(db, "EXPLAIN SELECT count(*) FROM t WHERE col0 < 5");
  ASSERT_TRUE(ex.ok()) << ex.status().ToString();
  EXPECT_EQ(ex.value().explain, Query::ExplainMode::kPlan);
  EXPECT_EQ(ex.value().kind, Query::Kind::kSelect);

  auto an = ParseSql(db, "explain analyze UPDATE t SET col1 = 7 WHERE col0 < 5");
  ASSERT_TRUE(an.ok()) << an.status().ToString();
  EXPECT_EQ(an.value().explain, Query::ExplainMode::kAnalyze);
  EXPECT_EQ(an.value().kind, Query::Kind::kUpdate);

  // EXPLAIN with nothing behind it is still an error.
  EXPECT_FALSE(ParseSql(db, "EXPLAIN").ok());
}

// ---------------------------------------------------------------------
// Rendering.
// ---------------------------------------------------------------------

TEST(ExplainRenderTest, PlanTreeShowsEstimatesAndOperators) {
  Database db;
  MakeSortedCsi(&db, "t");
  Query q = MicroQ1("t", 0.001, 999999);
  Optimizer opt(&db);
  auto plan = opt.Plan(q, Configuration::FromCatalog(db), {});
  ASSERT_TRUE(plan.ok());
  const std::string s = ExplainPlan(q, plan->plan);
  EXPECT_NE(s.find("EXPLAIN"), std::string::npos) << s;
  EXPECT_NE(s.find("-> "), std::string::npos) << s;
  EXPECT_NE(s.find("[t]"), std::string::npos) << s;
  EXPECT_NE(s.find("est_rows="), std::string::npos) << s;
  EXPECT_NE(s.find("est_cost_ms="), std::string::npos) << s;
  // Aggregating query: an agg root above the scan.
  EXPECT_NE(s.find("Agg"), std::string::npos) << s;
  // Estimates only — no actuals without execution.
  EXPECT_EQ(s.find("[actual"), std::string::npos) << s;
}

TEST(ExplainRenderTest, AnalyzeShowsActualsAndTotals) {
  Database db;
  MakeSortedCsi(&db, "t");
  Query q = MicroQ1("t", 0.001, 999999);
  PhysicalPlan plan;
  QueryResult r = RunQ(&db, q, /*max_dop=*/4, &plan);
  const std::string s = ExplainAnalyze(q, plan, r);
  EXPECT_NE(s.find("EXPLAIN ANALYZE"), std::string::npos) << s;
  EXPECT_NE(s.find("[actual"), std::string::npos) << s;
  EXPECT_NE(s.find("rows_out="), std::string::npos) << s;
  EXPECT_NE(s.find("segments="), std::string::npos) << s;
  EXPECT_NE(s.find("skipped"), std::string::npos) << s;
  EXPECT_NE(s.find("Query totals"), std::string::npos) << s;
}

// ---------------------------------------------------------------------
// Attribution contract: operator counters sum to the query totals.
// ---------------------------------------------------------------------

TEST(ExplainRollupTest, Fig1SelectivityQuerySumsToQueryTotals) {
  Database db;
  MakeSortedCsi(&db, "t");
  // The Fig. 1 micro-query at 0.1% selectivity over the sorted CSI: the
  // parallel scan must skip trailing row groups via min/max.
  Query q = MicroQ1("t", 0.001, 999999);
  QueryResult r = RunQ(&db, q, /*max_dop=*/4);

  ASSERT_GE(r.operators.size(), 2u);  // CsiScan + HashAgg
  EXPECT_NE(r.operators[0].name.find("[t]"), std::string::npos);
  EXPECT_EQ(r.operators[0].phase, "scan");

  EXPECT_GT(r.metrics.segments_skipped.load(), 0u);
  EXPECT_GT(r.metrics.rows_scanned.load(), 0u);

  EXPECT_EQ(SumOps(r, [](const QueryMetrics& m) { return m.rows_scanned.load(); }),
            r.metrics.rows_scanned.load());
  EXPECT_EQ(SumOps(r, [](const QueryMetrics& m) { return m.segments_scanned.load(); }),
            r.metrics.segments_scanned.load());
  EXPECT_EQ(SumOps(r, [](const QueryMetrics& m) { return m.segments_skipped.load(); }),
            r.metrics.segments_skipped.load());
  EXPECT_EQ(SumOps(r, [](const QueryMetrics& m) { return m.morsels_scheduled.load(); }),
            r.metrics.morsels_scheduled.load());
  EXPECT_EQ(SumOps(r, [](const QueryMetrics& m) { return m.morsels_stolen.load(); }),
            r.metrics.morsels_stolen.load());
  EXPECT_EQ(SumOps(r, [](const QueryMetrics& m) { return m.runs_evaluated.load(); }),
            r.metrics.runs_evaluated.load());
  EXPECT_EQ(SumOps(r, [](const QueryMetrics& m) { return m.rows_decoded.load(); }),
            r.metrics.rows_decoded.load());
  EXPECT_EQ(SumOps(r, [](const QueryMetrics& m) { return m.pages_read.load(); }),
            r.metrics.pages_read.load());
  EXPECT_EQ(SumOps(r, [](const QueryMetrics& m) { return m.rows_selected.load(); }),
            r.metrics.rows_selected.load());
  EXPECT_EQ(SumOps(r, [](const QueryMetrics& m) {
              return m.rows_late_materialized.load();
            }),
            r.metrics.rows_late_materialized.load());
  EXPECT_EQ(SumOps(r, [](const QueryMetrics& m) { return m.aggs_pushed_down.load(); }),
            r.metrics.aggs_pushed_down.load());
  EXPECT_EQ(SumOps(r, [](const QueryMetrics& m) { return m.hash_probes.load(); }),
            r.metrics.hash_probes.load());
  // The selection counter accounts every row surviving the predicate; a
  // pure COUNT under a pushable predicate answers row groups in the
  // encoded domain (aggs_pushed_down > 0) without decoding them.
  EXPECT_GT(r.metrics.rows_selected.load(), 0u);
  EXPECT_GT(r.metrics.aggs_pushed_down.load(), 0u);
  EXPECT_LE(r.metrics.rows_selected.load(), r.metrics.rows_scanned.load());

  // The scan fed the aggregate every selected row — batched rows plus the
  // rows pushed-down aggregates consumed in the encoded domain.
  EXPECT_EQ(r.operators[0].rows_out, r.operators[1].rows_in);
  EXPECT_GT(r.operators[0].rows_out, 0u);
}

TEST(ExplainRollupTest, JoinQueryRowFlowIsConsistent) {
  Database db;
  MicroOptions mo;
  mo.rows = 20000;
  mo.max_value = 99;  // join key domain
  Table* t = MakeUniformIntTable(&db, "fact", 2, mo);
  ASSERT_NE(t, nullptr);
  MicroOptions dmo;
  dmo.rows = 100;
  dmo.max_value = 99;
  Table* d = MakeUniformIntTable(&db, "dim", 2, dmo);
  ASSERT_NE(d, nullptr);
  db.GetTable("fact")->Analyze();
  db.GetTable("dim")->Analyze();

  auto q = ParseSql(db, "SELECT count(*) FROM fact JOIN dim ON fact.col0 = dim.col0");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  QueryResult r = RunQ(&db, q.value(), /*max_dop=*/1);

  ASSERT_GE(r.operators.size(), 3u);  // scan + join + agg
  int join_idx = -1;
  for (size_t i = 0; i < r.operators.size(); ++i) {
    if (r.operators[i].phase == "join") join_idx = static_cast<int>(i);
  }
  ASSERT_GE(join_idx, 0);
  // Every scanned fact row is probed into the join.
  EXPECT_EQ(r.operators[0].rows_out, r.operators[join_idx].rows_in);
  EXPECT_GT(r.operators[join_idx].rows_in, 0u);
  // Rollup still holds with a join in the pipeline.
  EXPECT_EQ(SumOps(r, [](const QueryMetrics& m) { return m.rows_scanned.load(); }),
            r.metrics.rows_scanned.load());
  EXPECT_EQ(SumOps(r, [](const QueryMetrics& m) { return m.cpu_ns.load(); }),
            r.metrics.cpu_ns.load());
}

TEST(ExplainRollupTest, DmlOperatorsCoverScanAndMutation) {
  Database db;
  MicroOptions mo;
  mo.rows = 10000;
  mo.max_value = 999;
  ASSERT_NE(MakeUniformIntTable(&db, "t", 2, mo), nullptr);
  auto q = ParseSql(db, "UPDATE t SET col1 = 5 WHERE col0 < 100");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  QueryResult r = RunQ(&db, q.value(), /*max_dop=*/1);
  ASSERT_EQ(r.operators.size(), 2u);  // scan + Update
  EXPECT_EQ(r.operators[1].name, "Update[t]");
  EXPECT_EQ(r.operators[1].rows_out, r.affected_rows);
  EXPECT_EQ(r.operators[0].rows_out, r.operators[1].rows_in);
  EXPECT_EQ(SumOps(r, [](const QueryMetrics& m) { return m.rows_scanned.load(); }),
            r.metrics.rows_scanned.load());
}

// ---------------------------------------------------------------------
// Trace export: valid Chrome trace-event JSON.
// ---------------------------------------------------------------------

// Minimal JSON syntax checker (objects, arrays, strings, numbers, bools,
// null). Returns true iff the whole input is one valid value.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}
  bool Valid() {
    Ws();
    if (!Value()) return false;
    Ws();
    return i_ == s_.size();
  }

 private:
  void Ws() {
    while (i_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[i_]))) {
      ++i_;
    }
  }
  bool Lit(const char* w) {
    const size_t n = std::string(w).size();
    if (s_.compare(i_, n, w) != 0) return false;
    i_ += n;
    return true;
  }
  bool String() {
    if (i_ >= s_.size() || s_[i_] != '"') return false;
    ++i_;
    while (i_ < s_.size() && s_[i_] != '"') {
      if (s_[i_] == '\\') {
        if (i_ + 1 >= s_.size()) return false;
        ++i_;
      }
      ++i_;
    }
    if (i_ >= s_.size()) return false;
    ++i_;  // closing quote
    return true;
  }
  bool Number() {
    const size_t start = i_;
    if (i_ < s_.size() && s_[i_] == '-') ++i_;
    while (i_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[i_])) || s_[i_] == '.' ||
            s_[i_] == 'e' || s_[i_] == 'E' || s_[i_] == '+' || s_[i_] == '-')) {
      ++i_;
    }
    return i_ > start;
  }
  bool Value() {
    Ws();
    if (i_ >= s_.size()) return false;
    const char c = s_[i_];
    if (c == '{') return Object();
    if (c == '[') return Array();
    if (c == '"') return String();
    if (c == 't') return Lit("true");
    if (c == 'f') return Lit("false");
    if (c == 'n') return Lit("null");
    return Number();
  }
  bool Object() {
    ++i_;  // {
    Ws();
    if (i_ < s_.size() && s_[i_] == '}') { ++i_; return true; }
    while (true) {
      Ws();
      if (!String()) return false;
      Ws();
      if (i_ >= s_.size() || s_[i_] != ':') return false;
      ++i_;
      if (!Value()) return false;
      Ws();
      if (i_ < s_.size() && s_[i_] == ',') { ++i_; continue; }
      break;
    }
    if (i_ >= s_.size() || s_[i_] != '}') return false;
    ++i_;
    return true;
  }
  bool Array() {
    ++i_;  // [
    Ws();
    if (i_ < s_.size() && s_[i_] == ']') { ++i_; return true; }
    while (true) {
      if (!Value()) return false;
      Ws();
      if (i_ < s_.size() && s_[i_] == ',') { ++i_; continue; }
      break;
    }
    if (i_ >= s_.size() || s_[i_] != ']') return false;
    ++i_;
    return true;
  }

  const std::string& s_;
  size_t i_ = 0;
};

TEST(TraceTest, DisabledRecordsNothing) {
  Trace::Global().Disable();
  Trace::Global().Clear();
  Database db;
  MakeSortedCsi(&db, "t");
  RunQ(&db, MicroQ1("t", 0.01, 999999), /*max_dop=*/4);
  EXPECT_EQ(Trace::Global().event_count(), 0u);
  EXPECT_TRUE(JsonChecker(Trace::Global().ToJson()).Valid());
}

TEST(TraceTest, ParallelScanEmitsValidChromeTraceJson) {
  Database db;
  MakeSortedCsi(&db, "t");
  Trace::Global().Enable();
  RunQ(&db, MicroQ1("t", 0.2, 999999), /*max_dop=*/4);
  Trace::Global().Disable();
  ASSERT_GT(Trace::Global().event_count(), 0u);

  const std::string json = Trace::Global().ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"hd-trace/2\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  // Events carry the operator label and morsel index.
  EXPECT_NE(json.find("[t]"), std::string::npos);
  EXPECT_NE(json.find("\"morsel\""), std::string::npos);

  // WriteJson round-trips the same bytes to disk.
  const std::string path = "trace_test_out.json";
  ASSERT_TRUE(Trace::Global().WriteJson(path).ok());
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string disk;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) disk.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(disk, json);

  Trace::Global().Clear();
}

}  // namespace
}  // namespace hd
