// Edge cases and failure injection: empty tables, degenerate predicates,
// buffer-pool pressure, tiny grants, delta-store visibility, and
// optimizer behaviour at boundary conditions.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "workload/micro.h"

namespace hd {
namespace {

QueryResult RunQ(Database* db, const Query& q, uint64_t grant = 4ull << 30) {
  Optimizer opt(db);
  auto plan = opt.Plan(q, Configuration::FromCatalog(*db), {});
  EXPECT_TRUE(plan.ok());
  ExecContext ctx;
  ctx.db = db;
  ctx.memory_grant_bytes = grant;
  Executor ex(ctx);
  QueryResult r = ex.Execute(q, plan->plan);
  EXPECT_TRUE(r.ok()) << r.status.ToString();
  return r;
}

TEST(EdgeTest, EmptyTableQueries) {
  Database db;
  auto t = db.CreateTable("empty", Schema({{"a", ValueType::kInt64, 0},
                                           {"b", ValueType::kInt64, 0}}));
  ASSERT_TRUE(t.ok());
  t.value()->Analyze();
  // All designs on an empty table.
  for (int design = 0; design < 3; ++design) {
    if (design == 1) ASSERT_TRUE(t.value()->SetPrimary(PrimaryKind::kBTree, {0}).ok());
    if (design == 2) ASSERT_TRUE(t.value()->SetPrimary(PrimaryKind::kColumnStore).ok());
    Query agg;
    agg.base.table = "empty";
    agg.aggs = {AggSpec::CountStar(), AggSpec::Sum(Expr::Col(0, 1), "s"),
                AggSpec::Min(Expr::Col(0, 0))};
    QueryResult r = RunQ(&db, agg);
    EXPECT_EQ(r.rows[0][0].i64(), 0);
    EXPECT_TRUE(r.rows[0][2].is_null());  // min of nothing
    Query proj;
    proj.base.table = "empty";
    proj.select_cols = {ColRef{0, 0}};
    EXPECT_EQ(RunQ(&db, proj).row_count, 0u);
    Query grp;
    grp.base.table = "empty";
    grp.group_by = {ColRef{0, 0}};
    grp.aggs = {AggSpec::CountStar()};
    EXPECT_EQ(RunQ(&db, grp).row_count, 0u);
  }
}

TEST(EdgeTest, UpdateMatchingNothing) {
  Database db;
  MicroOptions mo;
  mo.rows = 1000;
  mo.max_value = 10;
  MakeUniformIntTable(&db, "t", 2, mo);
  Query u;
  u.kind = Query::Kind::kUpdate;
  u.base.table = "t";
  u.base.preds = {Pred::Eq(0, Value::Int64(999))};  // out of domain
  u.sets = {UpdateSet::Add(1, 1.0)};
  EXPECT_EQ(RunQ(&db, u).affected_rows, 0u);
}

TEST(EdgeTest, SingleRowTable) {
  Database db;
  auto t = db.CreateTable("one", Schema({{"a", ValueType::kInt64, 0}}));
  std::vector<std::vector<int64_t>> cols(1);
  cols[0].push_back(42);
  t.value()->BulkLoadPacked(std::move(cols));
  for (int design = 0; design < 2; ++design) {
    if (design == 1) ASSERT_TRUE(t.value()->SetPrimary(PrimaryKind::kColumnStore).ok());
    Query q;
    q.base.table = "one";
    q.aggs = {AggSpec::Sum(Expr::Col(0, 0), "s")};
    EXPECT_EQ(RunQ(&db, q).rows[0][0].i64(), 42);
  }
}

TEST(EdgeTest, BufferPoolPressureDuringScan) {
  // A buffer pool far smaller than the data: every scan thrashes, charges
  // I/O, and must still return correct answers.
  DiskConfig disk;
  Database db(disk, /*buffer_capacity=*/64 * kPageBytes);
  MicroOptions mo;
  mo.rows = 200000;
  mo.max_value = 1000;
  Table* t = MakeUniformIntTable(&db, "t", 2, mo);
  ASSERT_TRUE(t->SetPrimary(PrimaryKind::kBTree, {0}).ok());
  int64_t ref = 0;
  t->ScanAll([&](int64_t, const int64_t* r) { ref += r[1]; return true; },
             nullptr);
  Query q;
  q.base.table = "t";
  q.aggs = {AggSpec::Sum(Expr::Col(0, 1), "s")};
  QueryResult r = RunQ(&db, q);
  EXPECT_EQ(r.rows[0][0].i64(), ref);
  EXPECT_GT(r.metrics.sim_io_ms(), 0.0);  // it really thrashed
  EXPECT_LE(db.buffer_pool()->resident_bytes(), 64 * kPageBytes * 2);
}

TEST(EdgeTest, TinyGrantStillCorrect) {
  Database db;
  Table* t = MakeGroupedTable(&db, "t", 50000, 20000, 5);
  (void)t;
  Query q = MicroQ3("t");
  QueryResult small = RunQ(&db, q, /*grant=*/64 << 10);
  QueryResult big = RunQ(&db, q);
  EXPECT_EQ(small.row_count, big.row_count);
}

TEST(EdgeTest, DeltaRowsVisibleThroughEveryPath) {
  Database db;
  MicroOptions mo;
  mo.rows = 20000;
  mo.max_value = 1000;
  Table* t = MakeUniformIntTable(&db, "t", 2, mo);
  ASSERT_TRUE(t->SetPrimary(PrimaryKind::kColumnStore).ok());
  ASSERT_TRUE(t->CreateSecondaryBTree("ix", {0}, {1}).ok());
  // Insert rows that only exist in the delta store.
  Query ins;
  ins.kind = Query::Kind::kInsert;
  ins.base.table = "t";
  for (int i = 0; i < 50; ++i) {
    ins.insert_rows.push_back({Value::Int64(5000 + i), Value::Int64(1)});
  }
  RunQ(&db, ins);
  EXPECT_GT(t->primary_csi()->delta_rows(), 0u);
  // Count through the CSI path and through the secondary B+ tree path.
  Query q;
  q.base.table = "t";
  q.base.preds = {Pred::Between(0, Value::Int64(5000), Value::Int64(5049))};
  q.aggs = {AggSpec::CountStar()};
  PhysicalPlan csi_plan;
  csi_plan.base.kind = AccessPath::Kind::kCsiScan;
  csi_plan.agg = AggMethod::kHash;
  PhysicalPlan ix_plan;
  ix_plan.base.kind = AccessPath::Kind::kBTreeRange;
  ix_plan.base.index_name = "ix";
  ix_plan.base.seek_cols = 1;
  ix_plan.agg = AggMethod::kHash;
  ExecContext ctx;
  ctx.db = &db;
  Executor ex(ctx);
  QueryResult r1 = ex.Execute(q, csi_plan);
  QueryResult r2 = ex.Execute(q, ix_plan);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.rows[0][0].i64(), r2.rows[0][0].i64());
  EXPECT_EQ(r1.rows[0][0].i64(), 50);
}

TEST(EdgeTest, ReorganizePreservesQueryResults) {
  Database db;
  MicroOptions mo;
  mo.rows = 30000;
  mo.max_value = 500;
  Table* t = MakeUniformIntTable(&db, "t", 2, mo);
  ASSERT_TRUE(t->CreateSecondaryColumnStore("csi").ok());
  // Mutate: delete a slice, update another, insert rows.
  Query del;
  del.kind = Query::Kind::kDelete;
  del.base.table = "t";
  del.base.preds = {Pred::Lt(0, Value::Int64(10))};
  RunQ(&db, del);
  Query upd;
  upd.kind = Query::Kind::kUpdate;
  upd.base.table = "t";
  upd.base.preds = {Pred::Eq(0, Value::Int64(100))};
  upd.sets = {UpdateSet::Add(1, 3)};
  RunQ(&db, upd);
  Query q;
  q.base.table = "t";
  q.aggs = {AggSpec::CountStar(), AggSpec::Sum(Expr::Col(0, 1), "s")};
  QueryResult before = RunQ(&db, q);
  t->FindSecondary("csi")->csi->Reorganize();
  QueryResult after = RunQ(&db, q);
  EXPECT_EQ(before.rows[0][0].i64(), after.rows[0][0].i64());
  EXPECT_EQ(before.rows[0][1].i64(), after.rows[0][1].i64());
  EXPECT_EQ(t->FindSecondary("csi")->csi->delete_buffer_rows(), 0u);
}

TEST(EdgeTest, OptimizerSortedCsiRespectsRowGroupGranularity) {
  // On a table smaller than one row group, a sorted CSI cannot skip;
  // a selective query must prefer the B+ tree.
  Database db;
  MicroOptions mo;
  mo.rows = 60000;  // < 131072 = one row group
  mo.max_value = 1 << 30;
  Table* t = MakeUniformIntTable(&db, "t", 2, mo);
  ASSERT_TRUE(t->SetPrimary(PrimaryKind::kBTree, {0}).ok());
  ASSERT_TRUE(t->CreateSecondaryColumnStore("csi", /*sort_col=*/0).ok());
  Query q = MicroQ1("t", 0.0001, 1 << 30);
  Optimizer opt(&db);
  auto plan = opt.Plan(q, Configuration::FromCatalog(db), {});
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->plan.base.is_btree()) << plan->plan.Describe();
}

TEST(EdgeTest, StringEqualityOnAbsentValue) {
  Database db;
  auto t = db.CreateTable("t", Schema({{"s", ValueType::kString, 8},
                                       {"v", ValueType::kInt64, 0}}));
  std::vector<Row> rows;
  for (int i = 0; i < 100; ++i) {
    rows.push_back({Value::String("x" + std::to_string(i % 5)),
                    Value::Int64(i)});
  }
  t.value()->BulkLoad(rows);
  Query q;
  q.base.table = "t";
  q.base.preds = {Pred::Eq(0, Value::String("never-seen"))};
  q.aggs = {AggSpec::CountStar()};
  EXPECT_EQ(RunQ(&db, q).rows[0][0].i64(), 0);
}

TEST(EdgeTest, WidePredicateOnEveryColumn) {
  Database db;
  MicroOptions mo;
  mo.rows = 10000;
  mo.max_value = 100;
  MakeUniformIntTable(&db, "t", 4, mo);
  Query q;
  q.base.table = "t";
  for (int c = 0; c < 4; ++c) {
    q.base.preds.push_back(
        Pred::Between(c, Value::Int64(10), Value::Int64(90)));
  }
  q.aggs = {AggSpec::CountStar()};
  QueryResult r = RunQ(&db, q);
  int64_t ref = 0;
  db.GetTable("t")->ScanAll(
      [&](int64_t, const int64_t* row) {
        bool ok = true;
        for (int c = 0; c < 4; ++c) ok &= row[c] >= 10 && row[c] <= 90;
        ref += ok;
        return true;
      },
      nullptr);
  EXPECT_EQ(r.rows[0][0].i64(), ref);
}

TEST(EdgeTest, LimitZero) {
  Database db;
  MicroOptions mo;
  mo.rows = 1000;
  MakeUniformIntTable(&db, "t", 1, mo);
  Query q;
  q.base.table = "t";
  q.select_cols = {ColRef{0, 0}};
  q.limit = 0;
  EXPECT_EQ(RunQ(&db, q).row_count, 0u);
}

TEST(EdgeTest, DoubleColumnMinMaxThroughPackedOrder) {
  Database db;
  auto t = db.CreateTable("t", Schema({{"d", ValueType::kDouble, 0}}));
  Rng rng(6);
  std::vector<std::vector<int64_t>> cols(1);
  double ref_min = 1e300, ref_max = -1e300;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformReal(-1e6, 1e6);
    ref_min = std::min(ref_min, v);
    ref_max = std::max(ref_max, v);
    cols[0].push_back(t.value()->PackValue(0, Value::Double(v)));
  }
  t.value()->BulkLoadPacked(std::move(cols));
  ASSERT_TRUE(t.value()->SetPrimary(PrimaryKind::kColumnStore).ok());
  Query q;
  q.base.table = "t";
  q.aggs = {AggSpec::Min(Expr::Col(0, 0)), AggSpec::Max(Expr::Col(0, 0))};
  QueryResult r = RunQ(&db, q);
  EXPECT_DOUBLE_EQ(r.rows[0][0].f64(), ref_min);
  EXPECT_DOUBLE_EQ(r.rows[0][1].f64(), ref_max);
}

}  // namespace
}  // namespace hd
