// Optimizer tests: selectivity estimation, access-path selection, what-if
// configurations, plan-shape decisions.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "optimizer/optimizer.h"
#include "workload/micro.h"
#include "workload/tpch.h"

namespace hd {
namespace {

class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest() {
    MicroOptions mo;
    mo.rows = 100000;
    mo.max_value = 99999;
    t_ = MakeUniformIntTable(&db_, "t", 2, mo);
    opt_ = std::make_unique<Optimizer>(&db_);
  }
  Database db_;
  Table* t_;
  std::unique_ptr<Optimizer> opt_;
};

TEST_F(OptimizerTest, SelectivityRange) {
  std::vector<Pred> preds = {Pred::Lt(0, Value::Int64(10000))};
  EXPECT_NEAR(opt_->PredSelectivity(*t_, preds), 0.1, 0.03);
  preds = {Pred::Between(0, Value::Int64(0), Value::Int64(99999))};
  EXPECT_NEAR(opt_->PredSelectivity(*t_, preds), 1.0, 0.05);
}

TEST_F(OptimizerTest, SelectivityEqFrequentValue) {
  Table* g = MakeGroupedTable(&db_, "g", 60000, 6, 3);
  std::vector<Pred> preds = {Pred::Eq(0, Value::Int64(3))};
  EXPECT_NEAR(opt_->PredSelectivity(*g, preds), 1.0 / 6, 0.05);
}

TEST_F(OptimizerTest, SelectivityConjunction) {
  std::vector<Pred> preds = {Pred::Lt(0, Value::Int64(10000)),
                             Pred::Lt(1, Value::Int64(50000))};
  EXPECT_NEAR(opt_->PredSelectivity(*t_, preds), 0.05, 0.02);
}

TEST_F(OptimizerTest, ImpossiblePredicateZeroSelectivity) {
  std::vector<Pred> preds = {
      Pred::Between(0, Value::Int64(10), Value::Int64(5))};
  EXPECT_DOUBLE_EQ(opt_->PredSelectivity(*t_, preds), 0.0);
}

TEST_F(OptimizerTest, PicksSeekAtLowSelectivity) {
  ASSERT_TRUE(t_->SetPrimary(PrimaryKind::kBTree, {0}).ok());
  ASSERT_TRUE(t_->CreateSecondaryColumnStore("csi").ok());
  Query q = MicroQ1("t", 0.0001, 99999);
  auto plan = opt_->Plan(q, Configuration::FromCatalog(db_), {});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->plan.base.kind, AccessPath::Kind::kBTreeRange)
      << plan->plan.Describe();
}

TEST_F(OptimizerTest, PicksCsiAtHighSelectivity) {
  ASSERT_TRUE(t_->SetPrimary(PrimaryKind::kBTree, {0}).ok());
  ASSERT_TRUE(t_->CreateSecondaryColumnStore("csi").ok());
  Query q = MicroQ1("t", 0.9, 99999);
  auto plan = opt_->Plan(q, Configuration::FromCatalog(db_), {});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->plan.base.kind, AccessPath::Kind::kCsiScan)
      << plan->plan.Describe();
}

TEST_F(OptimizerTest, WhatIfHypotheticalBTreeLowersCost) {
  // No materialized secondary: a hypothetical B+ tree on col0 must lower
  // the estimated cost of a selective query without being built.
  Query q = MicroQ1("t", 0.0001, 99999);
  Configuration base = Configuration::FromCatalog(db_);
  auto c0 = opt_->WhatIfCost(q, base, {});
  ASSERT_TRUE(c0.ok());
  Configuration hyp = base;
  ConfigIndex ix;
  ix.def.type = IndexDef::Type::kBTree;
  ix.def.name = "hyp_ix";
  ix.def.key_cols = {0};
  ix.def.included_cols = {1};
  ix.stats = EstimateBTreeStats(*t_, ix.def);
  ix.hypothetical = true;
  hyp.FindMutable("t")->secondaries.push_back(ix);
  auto c1 = opt_->WhatIfCost(q, hyp, {});
  ASSERT_TRUE(c1.ok());
  EXPECT_LT(*c1, *c0 / 5);
  // The table itself is untouched.
  EXPECT_TRUE(t_->secondaries().empty());
}

TEST_F(OptimizerTest, ColdPlanningChargesIo) {
  Query q = MicroQ1("t", 0.5, 99999);
  Configuration cfg = Configuration::FromCatalog(db_);
  PlanOptions hot, cold;
  cold.cold = true;
  auto ch = opt_->WhatIfCost(q, cfg, hot);
  auto cc = opt_->WhatIfCost(q, cfg, cold);
  EXPECT_GT(*cc, *ch);
}

TEST_F(OptimizerTest, UpdateCostPenalizesCsi) {
  // The same UPDATE must be estimated costlier when a secondary CSI must
  // be maintained, and costlier still on a primary CSI.
  Database db;
  TpchOptions to;
  to.rows = 50000;
  Table* li = MakeLineitem(&db, "li", to);
  ASSERT_TRUE(li->SetPrimary(PrimaryKind::kBTree,
                             {LineitemCols::kOrderKey,
                              LineitemCols::kLineNumber}).ok());
  ASSERT_TRUE(li->CreateSecondaryBTree("ix_ship",
                                       {LineitemCols::kShipDate}, {}).ok());
  Optimizer opt(&db);
  Query upd = TpchQ4("li", 100, kTpchShipDateLo + 10);

  Configuration cfg_bt = Configuration::FromCatalog(db);
  auto c_bt = opt.WhatIfCost(upd, cfg_bt, {});

  Configuration cfg_sec = cfg_bt;
  ConfigIndex csi;
  csi.def.type = IndexDef::Type::kColumnStore;
  csi.def.name = "csi";
  csi.stats.rows = li->num_rows();
  csi.stats.size_bytes = 4 << 20;
  cfg_sec.FindMutable("li")->secondaries.push_back(csi);
  auto c_sec = opt.WhatIfCost(upd, cfg_sec, {});

  Configuration cfg_pri = cfg_bt;
  cfg_pri.FindMutable("li")->primary = PrimaryKind::kColumnStore;
  cfg_pri.FindMutable("li")->primary_keys.clear();
  auto c_pri = opt.WhatIfCost(upd, cfg_pri, {});

  EXPECT_GT(*c_sec, *c_bt);
  EXPECT_GT(*c_pri, *c_sec);
}

TEST_F(OptimizerTest, StreamAggChosenUnderTightGrant) {
  // Slow medium: spilling a hash aggregate must hurt (Fig. 4's setup).
  DiskConfig slow;
  slow.read_bw_mb_s = 60;
  slow.write_bw_mb_s = 25;
  Database db(slow);
  Table* g = MakeGroupedTable(&db, "g", 400000, 200000, 9);
  ASSERT_TRUE(g->SetPrimary(PrimaryKind::kBTree, {0}).ok());
  Optimizer opt(&db);
  Query q = MicroQ3("g");
  PlanOptions tight;
  tight.memory_grant_bytes = 1 << 20;
  auto plan = opt.Plan(q, Configuration::FromCatalog(db), tight);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->plan.agg, AggMethod::kStream) << plan->plan.Describe();
}

TEST_F(OptimizerTest, NonCoveringIndexPenalized) {
  // Three columns so the clustering key (col2) does not cover the measure
  // (col1): the secondary that includes col1 must win the covering query.
  Database db;
  MicroOptions mo;
  mo.rows = 100000;
  mo.max_value = 99999;
  Table* t = MakeUniformIntTable(&db, "t3", 3, mo);
  ASSERT_TRUE(t->SetPrimary(PrimaryKind::kBTree, {2}).ok());
  ASSERT_TRUE(t->CreateSecondaryBTree("ix_plain", {0}, {}).ok());
  ASSERT_TRUE(t->CreateSecondaryBTree("ix_cover", {0}, {1}).ok());
  Query q = MicroQ1("t3", 0.001, 99999);
  q.aggs[0] = AggSpec::Sum(Expr::Col(0, 1), "s");  // needs col1
  Optimizer opt(&db);
  auto plan = opt.Plan(q, Configuration::FromCatalog(db), {});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->plan.base.index_name, "ix_cover") << plan->plan.Describe();
}

TEST_F(OptimizerTest, DimDrivenPlanChosenForSelectiveDim) {
  Database db;
  // Fact with fk + measure; small dim with a selective attribute.
  auto fact = db.CreateTable("fact", Schema({{"fk", ValueType::kInt64, 0},
                                             {"m", ValueType::kInt64, 0}}));
  Rng rng(4);
  std::vector<std::vector<int64_t>> fcols(2);
  for (int i = 0; i < 200000; ++i) {
    fcols[0].push_back(rng.Uniform(0, 999));
    fcols[1].push_back(i);
  }
  fact.value()->BulkLoadPacked(std::move(fcols));
  ASSERT_TRUE(fact.value()->SetPrimary(PrimaryKind::kBTree, {0}).ok());
  ASSERT_TRUE(fact.value()->CreateSecondaryColumnStore("csi").ok());
  auto dim = db.CreateTable("dim", Schema({{"pk", ValueType::kInt64, 0},
                                           {"attr", ValueType::kInt64, 0}}));
  std::vector<std::vector<int64_t>> dcols(2);
  for (int i = 0; i < 1000; ++i) {
    dcols[0].push_back(i);
    dcols[1].push_back(i);  // unique attr
  }
  dim.value()->BulkLoadPacked(std::move(dcols));
  Query q;
  q.base.table = "fact";
  JoinClause jc;
  jc.dim.table = "dim";
  jc.base_col = 0;
  jc.dim_col = 0;
  jc.dim.preds = {Pred::Eq(1, Value::Int64(77))};  // one dim row
  q.joins.push_back(jc);
  q.aggs = {AggSpec::Sum(Expr::Col(0, 1), "s")};
  Optimizer opt(&db);
  PlanOptions po;
  po.max_dop = 1;
  auto plan = opt.Plan(q, Configuration::FromCatalog(db), po);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->plan.driving_join, 0) << plan->plan.Describe();
}

TEST(ConfigTest, FromCatalogSnapshotsSizes) {
  Database db;
  MicroOptions mo;
  mo.rows = 20000;
  Table* t = MakeUniformIntTable(&db, "t", 2, mo);
  ASSERT_TRUE(t->CreateSecondaryColumnStore("csi").ok());
  Configuration cfg = Configuration::FromCatalog(db);
  const TableConfig* tc = cfg.Find("t");
  ASSERT_NE(tc, nullptr);
  EXPECT_EQ(tc->primary_stats.rows, 20000u);
  ASSERT_EQ(tc->secondaries.size(), 1u);
  EXPECT_GT(tc->secondaries[0].stats.size_bytes, 0u);
  EXPECT_EQ(tc->secondaries[0].stats.column_bytes.size(), 2u);
  EXPECT_GT(cfg.SecondaryBytes(), 0u);
}

TEST(ConfigTest, MaterializeApplies) {
  Database db;
  MicroOptions mo;
  mo.rows = 5000;
  Table* t = MakeUniformIntTable(&db, "t", 2, mo);
  Configuration cfg = Configuration::FromCatalog(db);
  TableConfig* tc = cfg.FindMutable("t");
  tc->primary = PrimaryKind::kBTree;
  tc->primary_keys = {0};
  ConfigIndex csi;
  csi.def.type = IndexDef::Type::kColumnStore;
  csi.def.name = "csi_t";
  tc->secondaries.push_back(csi);
  ASSERT_TRUE(MaterializeConfiguration(&db, cfg).ok());
  EXPECT_EQ(t->primary_kind(), PrimaryKind::kBTree);
  EXPECT_TRUE(t->has_secondary_csi());
}

TEST(ConfigTest, BTreeSizeEstimateMatchesActual) {
  Database db;
  MicroOptions mo;
  mo.rows = 100000;
  Table* t = MakeUniformIntTable(&db, "t", 3, mo);
  IndexDef def;
  def.type = IndexDef::Type::kBTree;
  def.name = "ix";
  def.key_cols = {0};
  def.included_cols = {1};
  IndexStatsInfo est = EstimateBTreeStats(*t, def);
  ASSERT_TRUE(t->CreateSecondaryBTree("ix", {0}, {1}).ok());
  const uint64_t actual = t->FindSecondary("ix")->size_bytes();
  EXPECT_GT(est.size_bytes, actual / 2);
  EXPECT_LT(est.size_bytes, actual * 2);
}

}  // namespace
}  // namespace hd
