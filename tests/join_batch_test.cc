// Batch-mode join pipeline (exec/join_hash.h, Bloom pushdown, late
// materialization through joins).
//
// The row-mode probe path is kept as the differential oracle: every
// batch-mode plan shape is executed against the identical data through a
// row-mode (heap base) plan and the result multisets must match exactly —
// including duplicate-heavy build keys (vector expansion), FK misses,
// empty build sides, and the in-band sentinel key the flat table reserves
// for "empty slot".
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>
#include <vector>

#include "common/bloom.h"
#include "common/failpoint.h"
#include "common/rng.h"
#include "exec/admission.h"
#include "exec/executor.h"
#include "exec/join_hash.h"
#include "exec/scan_scheduler.h"
#include "optimizer/optimizer.h"
#include "workload/micro.h"

namespace hd {
namespace {

QueryResult ExecPlan(Database* db, const Query& q, const PhysicalPlan& p,
                int max_dop = 4, ScanScheduler* sched = nullptr,
                AdmissionController* adm = nullptr) {
  ExecContext ctx;
  ctx.db = db;
  ctx.max_dop = max_dop;
  ctx.scan_scheduler = sched;
  ctx.admission = adm;
  Executor ex(ctx);
  return ex.Execute(q, p);
}

QueryResult RunPlanned(Database* db, const Query& q, int max_dop = 4,
                       ScanScheduler* sched = nullptr,
                       AdmissionController* adm = nullptr) {
  Optimizer opt(db);
  auto plan = opt.Plan(q, Configuration::FromCatalog(*db), {});
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return ExecPlan(db, q, plan->plan, max_dop, sched, adm);
}

/// Rows as plain int64 tuples, sorted, for multiset comparison.
std::vector<std::vector<int64_t>> SortedRows(const QueryResult& r) {
  std::vector<std::vector<int64_t>> out;
  out.reserve(r.rows.size());
  for (const auto& row : r.rows) {
    std::vector<int64_t> t;
    t.reserve(row.size());
    for (const auto& v : row) t.push_back(v.i64());
    out.push_back(std::move(t));
  }
  std::sort(out.begin(), out.end());
  return out;
}

PhysicalPlan HashJoinPlan(AccessPath::Kind base, size_t njoins = 1,
                          int dop = 1) {
  PhysicalPlan p;
  p.base.kind = base;
  for (size_t s = 0; s < njoins; ++s) {
    JoinStep js;
    js.join_idx = static_cast<int>(s);
    js.method = JoinStep::Method::kHash;
    js.dim_path.kind = AccessPath::Kind::kHeapScan;
    p.joins.push_back(js);
  }
  p.agg = AggMethod::kHash;
  p.dop = dop;
  return p;
}

// ---------------------------------------------------------------------
// Fixture: the same fact data behind a CSI primary (batch-mode base) and
// a heap primary (row-mode oracle), joined to configurable dimensions.
// ---------------------------------------------------------------------

class BatchJoinTest : public ::testing::Test {
 protected:
  /// fact(fk, measure): `rows` rows, fk uniform in [0, fk_max].
  void MakeFacts(int rows, int64_t fk_max, uint64_t seed = 42) {
    Rng rng(seed);
    std::vector<std::vector<int64_t>> cols(2);
    for (int i = 0; i < rows; ++i) {
      cols[0].push_back(rng.Uniform(0, fk_max));
      cols[1].push_back(rng.Uniform(0, 1000));
    }
    auto csi = db_.CreateTable(
        "fact_csi", Schema({{"fk", ValueType::kInt64, 0},
                            {"measure", ValueType::kInt64, 0}}));
    auto cols2 = cols;
    csi.value()->BulkLoadPacked(std::move(cols2));
    ASSERT_TRUE(csi.value()->SetPrimary(PrimaryKind::kColumnStore).ok());
    auto heap = db_.CreateTable(
        "fact_row", Schema({{"fk", ValueType::kInt64, 0},
                            {"measure", ValueType::kInt64, 0}}));
    heap.value()->BulkLoadPacked(std::move(cols));
  }

  /// dim(pk, attr): n rows, pk = key_of(i), attr = i % 10.
  template <typename KeyFn>
  void MakeDim(const std::string& name, int n, KeyFn key_of) {
    auto dim = db_.CreateTable(name, Schema({{"pk", ValueType::kInt64, 0},
                                             {"attr", ValueType::kInt64, 0}}));
    std::vector<std::vector<int64_t>> cols(2);
    for (int i = 0; i < n; ++i) {
      cols[0].push_back(key_of(i));
      cols[1].push_back(i % 10);
    }
    dim.value()->BulkLoadPacked(std::move(cols));
  }

  /// SELECT fact.fk, fact.measure, dim.attr with an optional dim filter.
  Query WideJoinQuery(const std::string& fact, const std::string& dim,
                      int attr_eq = -1) {
    Query q;
    q.base.table = fact;
    JoinClause jc;
    jc.dim.table = dim;
    if (attr_eq >= 0) jc.dim.preds.push_back(Pred::Eq(1, Value::Int64(attr_eq)));
    jc.base_col = 0;
    jc.dim_col = 0;
    q.joins.push_back(jc);
    q.select_cols = {ColRef{0, 0}, ColRef{0, 1}, ColRef{1, 1}};
    return q;
  }

  /// Batch (CSI base) and row (heap base) runs must agree exactly.
  void ExpectBatchMatchesRow(const std::string& dim, int attr_eq,
                             int dop = 1) {
    Query qb = WideJoinQuery("fact_csi", dim, attr_eq);
    Query qr = WideJoinQuery("fact_row", dim, attr_eq);
    QueryResult rb =
        ExecPlan(&db_, qb, HashJoinPlan(AccessPath::Kind::kCsiScan, 1, dop));
    QueryResult rr = ExecPlan(&db_, qr, HashJoinPlan(AccessPath::Kind::kHeapScan));
    ASSERT_TRUE(rb.ok()) << rb.status.ToString();
    ASSERT_TRUE(rr.ok()) << rr.status.ToString();
    EXPECT_EQ(SortedRows(rb), SortedRows(rr));
    // The CSI base must actually have taken the batch-probe path, and the
    // heap base must not have.
    if (rb.row_count > 0) {
      EXPECT_GT(rb.metrics.join_batch_probes.load(), 0u);
    }
    EXPECT_EQ(rr.metrics.join_batch_probes.load(), 0u);
    // Bloom safety: a filter may drop at most the non-matching inflow,
    // and every match must have survived both filter and probe.
    EXPECT_LE(rb.metrics.join_bloom_filtered.load(),
              rb.metrics.join_bloom_checks.load());
    EXPECT_GE(rb.metrics.join_matches.load(), rb.row_count);
  }

  Database db_;
};

TEST_F(BatchJoinTest, DuplicateHeavyBuildKeysMatchRowMode) {
  // Result sets must stay under the executor's kMaxMaterializedRows cap
  // or batch and row mode would each truncate a different subset.
  MakeFacts(800, 39);
  // 400 dim rows over 40 distinct keys: every probe hit expands 10-way.
  MakeDim("dim", 400, [](int i) { return i % 40; });
  ExpectBatchMatchesRow("dim", /*attr_eq=*/3);
  ExpectBatchMatchesRow("dim", /*attr_eq=*/-1);
}

TEST_F(BatchJoinTest, FkMissesMatchRowMode) {
  // fk in [0, 800) but dim keys only cover [0, 400): half the probes miss
  // and most of those are Bloom-filtered before the probe kernels run.
  MakeFacts(16000, 799);
  MakeDim("dim", 400, [](int i) { return i; });
  ExpectBatchMatchesRow("dim", /*attr_eq=*/-1);
  Query q = WideJoinQuery("fact_csi", "dim");
  QueryResult r = ExecPlan(&db_, q, HashJoinPlan(AccessPath::Kind::kCsiScan));
  EXPECT_GT(r.metrics.join_bloom_filtered.load(), 0u);
}

TEST_F(BatchJoinTest, EmptyBuildSideProbesNothing) {
  MakeFacts(20000, 399);
  MakeDim("dim", 400, [](int i) { return i; });
  MakeDim("dim_empty", 0, [](int i) { return i; });
  // An impossible dim predicate and a zero-row dimension both yield an
  // all-zero Bloom filter, so every scanned row is filtered before the
  // probe kernels ever run.
  for (const char* dim : {"dim_empty"}) {
    Query q = WideJoinQuery("fact_csi", dim);
    QueryResult r = ExecPlan(&db_, q, HashJoinPlan(AccessPath::Kind::kCsiScan));
    ASSERT_TRUE(r.ok()) << r.status.ToString();
    EXPECT_EQ(r.row_count, 0u);
    EXPECT_GT(r.metrics.join_bloom_checks.load(), 0u);
    EXPECT_EQ(r.metrics.join_bloom_filtered.load(),
              r.metrics.join_bloom_checks.load());
    EXPECT_EQ(r.metrics.join_batch_probes.load(), 0u);
  }
  Query q = WideJoinQuery("fact_csi", "dim", /*attr_eq=*/77);  // impossible
  QueryResult r = ExecPlan(&db_, q, HashJoinPlan(AccessPath::Kind::kCsiScan));
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_EQ(r.row_count, 0u);
  EXPECT_EQ(r.metrics.join_batch_probes.load(), 0u);
}

TEST_F(BatchJoinTest, ParallelBuildAndProbeMatchesSerial) {
  // Dimension large enough for several CSI row groups, so PrepareJoins
  // takes the morsel-parallel build path at dop > 1.
  MakeFacts(50000, 299999);
  MakeDim("bigdim", 300000, [](int i) { return i; });
  Table* d = db_.GetTable("bigdim");
  ASSERT_TRUE(d->SetPrimary(PrimaryKind::kColumnStore).ok());
  Query q;
  q.base.table = "fact_csi";
  JoinClause jc;
  jc.dim.table = "bigdim";
  jc.dim.preds.push_back(Pred::Lt(1, Value::Int64(5)));
  jc.base_col = 0;
  jc.dim_col = 0;
  q.joins.push_back(jc);
  q.aggs.push_back(AggSpec::Sum(Expr::Col(0, 1), "s"));
  q.aggs.push_back(AggSpec::CountStar());
  PhysicalPlan serial = HashJoinPlan(AccessPath::Kind::kCsiScan, 1, 1);
  serial.joins[0].dim_path.kind = AccessPath::Kind::kCsiScan;
  PhysicalPlan par = serial;
  par.dop = 4;
  QueryResult rs = ExecPlan(&db_, q, serial);
  QueryResult rp = ExecPlan(&db_, q, par, /*max_dop=*/4);
  ASSERT_TRUE(rs.ok()) << rs.status.ToString();
  ASSERT_TRUE(rp.ok()) << rp.status.ToString();
  EXPECT_EQ(SortedRows(rs), SortedRows(rp));
  EXPECT_GT(rp.metrics.join_batch_probes.load(), 0u);
}

TEST_F(BatchJoinTest, LimitStopsBatchJoinEarly) {
  MakeFacts(200000, 399);
  MakeDim("dim", 400, [](int i) { return i; });
  Query q = WideJoinQuery("fact_csi", "dim");
  q.limit = 10;
  QueryResult r = ExecPlan(&db_, q, HashJoinPlan(AccessPath::Kind::kCsiScan));
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_EQ(r.row_count, 10u);
  EXPECT_LT(r.metrics.rows_scanned.load(), 200000u);
}

TEST_F(BatchJoinTest, AllPlanShapesAgree) {
  // Hash (batch + row), index-NL, and dimension-driven plans over the
  // same logical join must produce the same aggregate.
  MakeFacts(30000, 399);
  MakeDim("dim", 400, [](int i) { return i; });

  auto agg_query = [&](const std::string& fact) {
    Query q;
    q.base.table = fact;
    JoinClause jc;
    jc.dim.table = "dim";
    jc.dim.preds.push_back(Pred::Eq(1, Value::Int64(3)));
    jc.base_col = 0;
    jc.dim_col = 0;
    q.joins.push_back(jc);
    q.aggs.push_back(AggSpec::Sum(Expr::Col(0, 1), "s"));
    return q;
  };
  QueryResult batch = ExecPlan(&db_, agg_query("fact_csi"),
                          HashJoinPlan(AccessPath::Kind::kCsiScan));
  QueryResult row = ExecPlan(&db_, agg_query("fact_row"),
                        HashJoinPlan(AccessPath::Kind::kHeapScan));
  // Index-NL needs the dim behind a B+ tree on the join column; convert
  // only after the heap-scanning hash plans above have run.
  ASSERT_TRUE(db_.GetTable("dim")->SetPrimary(PrimaryKind::kBTree, {0}).ok());
  PhysicalPlan nl;
  nl.base.kind = AccessPath::Kind::kHeapScan;
  JoinStep js;
  js.join_idx = 0;
  js.method = JoinStep::Method::kIndexNL;
  js.dim_path.kind = AccessPath::Kind::kBTreeRange;
  nl.joins.push_back(js);
  nl.agg = AggMethod::kHash;
  QueryResult nlr = ExecPlan(&db_, agg_query("fact_row"), nl);
  ASSERT_TRUE(batch.ok() && row.ok() && nlr.ok());
  ASSERT_EQ(batch.rows.size(), 1u);
  EXPECT_EQ(batch.rows[0][0].i64(), row.rows[0][0].i64());
  EXPECT_EQ(batch.rows[0][0].i64(), nlr.rows[0][0].i64());
}

TEST_F(BatchJoinTest, RollupChargesJoinCountersToJoinOperator) {
  MakeFacts(30000, 799);
  MakeDim("dim", 400, [](int i) { return i; });
  Query q = WideJoinQuery("fact_csi", "dim");
  QueryResult r = ExecPlan(&db_, q, HashJoinPlan(AccessPath::Kind::kCsiScan));
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  ASSERT_GE(r.operators.size(), 3u);  // scan, join, project
  uint64_t op_probes = 0, op_checks = 0, op_filtered = 0, op_matches = 0;
  for (const auto& op : r.operators) {
    const uint64_t c = op.metrics.join_bloom_checks.load();
    const uint64_t p = op.metrics.join_batch_probes.load();
    if (c > 0 || p > 0) {
      // Bloom and probe work is attributed to join operators only — never
      // to the scan the filter physically ran inside.
      EXPECT_EQ(op.phase, "join") << op.name;
    }
    op_probes += p;
    op_checks += c;
    op_filtered += op.metrics.join_bloom_filtered.load();
    op_matches += op.metrics.join_matches.load();
  }
  EXPECT_GT(op_probes, 0u);
  EXPECT_GT(op_checks, 0u);
  // Exact-sum rollup: query totals are the sum over operator blocks (the
  // residual contributes no join work).
  EXPECT_EQ(r.metrics.join_batch_probes.load(), op_probes);
  EXPECT_EQ(r.metrics.join_bloom_checks.load(), op_checks);
  EXPECT_EQ(r.metrics.join_bloom_filtered.load(), op_filtered);
  EXPECT_EQ(r.metrics.join_matches.load(), op_matches);
}

// ---------------------------------------------------------------------
// Sentinel-collision regression: a legitimate build/probe key equal to
// FlatJoinMap's in-band empty marker must behave like any other key.
// ---------------------------------------------------------------------

TEST(FlatJoinMapTest, SentinelKeyIsAnOrdinaryKey) {
  const int64_t S = FlatJoinMap::kEmptyKey;
  std::vector<std::pair<int64_t, uint32_t>> pairs;
  std::multimap<int64_t, uint32_t> oracle;
  Rng rng(7);
  uint32_t next = 0;
  auto add = [&](int64_t k) {
    pairs.emplace_back(k, next);
    oracle.emplace(k, next);
    ++next;
  };
  // The sentinel key itself, duplicated, surrounded by a dense adversarial
  // neighbourhood and random keys (the old in-executor table truncated
  // probe chains once a build key equal to the sentinel was inserted).
  add(S);
  add(S);
  add(S);
  for (int64_t d = 1; d <= 16; ++d) add(S + d);
  for (int i = 0; i < 500; ++i) add(rng.Uniform(0, 1000));
  FlatJoinMap m;
  m.Build(pairs);
  EXPECT_FALSE(m.unique_keys());
  EXPECT_EQ(m.size(), pairs.size());

  std::vector<int64_t> probes;
  for (const auto& [k, v] : oracle) {
    (void)v;
    probes.push_back(k);
  }
  probes.push_back(S - 1);     // miss next to the sentinel
  probes.push_back(12345678);  // plain miss
  for (int64_t k : probes) {
    uint32_t n = 0;
    const uint32_t* idx = m.Find(k, &n);
    auto [lo, hi] = oracle.equal_range(k);
    std::vector<uint32_t> want, got;
    for (auto it = lo; it != hi; ++it) want.push_back(it->second);
    for (uint32_t i = 0; i < n; ++i) got.push_back(idx[i]);
    std::sort(want.begin(), want.end());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, want) << "key " << k;
  }

  // The batch kernels must agree with Find() on the same probe vector.
  std::vector<uint64_t> hashes(probes.size());
  std::vector<int32_t> slots(probes.size());
  m.ComputeHashes(probes.data(), probes.size(), hashes.data());
  m.FindSlots(probes.data(), hashes.data(), probes.size(), slots.data());
  std::vector<uint32_t> prow, brow;
  const size_t nm =
      m.ExpandMatches(slots.data(), probes.size(), &prow, &brow);
  std::multimap<int64_t, uint32_t> got;
  for (size_t i = 0; i < nm; ++i) got.emplace(probes[prow[i]], brow[i]);
  std::multimap<int64_t, uint32_t> want;
  for (int64_t k : probes) {
    auto [lo, hi] = oracle.equal_range(k);
    for (auto it = lo; it != hi; ++it) want.emplace(k, it->second);
  }
  EXPECT_EQ(got, want);
}

TEST(FlatJoinMapTest, UniqueDetectionSurvivesSentinelKey) {
  std::vector<std::pair<int64_t, uint32_t>> pairs;
  for (int i = 0; i < 100; ++i) {
    pairs.emplace_back(i * 3, static_cast<uint32_t>(i));
  }
  pairs.emplace_back(FlatJoinMap::kEmptyKey, 100);
  FlatJoinMap m;
  m.Build(pairs);
  EXPECT_TRUE(m.unique_keys());
  pairs.emplace_back(FlatJoinMap::kEmptyKey, 101);  // now a duplicate
  m.Build(pairs);
  EXPECT_FALSE(m.unique_keys());
}

TEST_F(BatchJoinTest, SentinelKeyEndToEnd) {
  // Fact and dim both carry the sentinel key value; batch and row plans
  // must agree on the join result.
  const int64_t S = FlatJoinMap::kEmptyKey;
  auto mk = [&](const char* name, bool csi) {
    auto t = db_.CreateTable(
        name, Schema({{"fk", ValueType::kInt64, 0},
                      {"measure", ValueType::kInt64, 0}}));
    std::vector<std::vector<int64_t>> cols(2);
    for (int i = 0; i < 5000; ++i) {
      cols[0].push_back(i % 7 == 0 ? S : i % 50);
      cols[1].push_back(i);
    }
    t.value()->BulkLoadPacked(std::move(cols));
    if (csi) {
      ASSERT_TRUE(t.value()->SetPrimary(PrimaryKind::kColumnStore).ok());
    }
  };
  mk("sfact_csi", true);
  mk("sfact_row", false);
  MakeDim("sdim", 60, [&](int i) { return i == 59 ? S : i; });
  Query qb = WideJoinQuery("sfact_csi", "sdim");
  Query qr = WideJoinQuery("sfact_row", "sdim");
  QueryResult rb = ExecPlan(&db_, qb, HashJoinPlan(AccessPath::Kind::kCsiScan));
  QueryResult rr = ExecPlan(&db_, qr, HashJoinPlan(AccessPath::Kind::kHeapScan));
  ASSERT_TRUE(rb.ok()) << rb.status.ToString();
  ASSERT_TRUE(rr.ok()) << rr.status.ToString();
  EXPECT_GT(rb.row_count, 0u);
  EXPECT_EQ(SortedRows(rb), SortedRows(rr));
}

// ---------------------------------------------------------------------
// Bloom filter unit: false positives allowed, false negatives never.
// ---------------------------------------------------------------------

TEST(BlockedBloomTest, NoFalseNegativesAndBoundedFalsePositives) {
  BlockedBloomFilter f;
  f.Init(10000);
  for (int64_t k = 0; k < 10000; ++k) f.Insert(k * 3);
  for (int64_t k = 0; k < 10000; ++k) {
    ASSERT_TRUE(f.MayContain(k * 3)) << k;  // never drop a real match
  }
  int fp = 0;
  for (int64_t k = 0; k < 10000; ++k) {
    if (f.MayContain(k * 3 + 1)) ++fp;
  }
  EXPECT_LT(fp, 1000);  // loose: a useful filter, not a specific rate
}

TEST(BlockedBloomTest, EmptyFilterRejectsEverything) {
  BlockedBloomFilter f;
  EXPECT_TRUE(f.empty());
  f.Init(0);
  EXPECT_FALSE(f.empty());
  for (int64_t k = -5; k < 5; ++k) EXPECT_FALSE(f.MayContain(k));
  EXPECT_FALSE(f.MayContain(FlatJoinMap::kEmptyKey));
}

// ---------------------------------------------------------------------
// Batch joins alongside shared scans + admission control.
// ---------------------------------------------------------------------

TEST_F(BatchJoinTest, JoinsUnderSharedScansAndAdmission) {
  MakeFacts(200000, 399);
  MakeDim("dim", 400, [](int i) { return i; });
  Query join_q = WideJoinQuery("fact_csi", "dim", /*attr_eq=*/3);
  join_q.select_cols.clear();
  Query scan_q;
  scan_q.base.table = "fact_csi";
  scan_q.base.preds.push_back(Pred::Lt(0, Value::Int64(200)));
  scan_q.aggs.push_back(AggSpec::Sum(Expr::Col(0, 1), "s"));
  join_q.aggs.push_back(AggSpec::Sum(Expr::Col(0, 1), "s"));

  const int64_t join_ref =
      ExecPlan(&db_, join_q, HashJoinPlan(AccessPath::Kind::kCsiScan))
          .rows[0][0]
          .i64();
  const int64_t scan_ref = RunPlanned(&db_, scan_q).rows[0][0].i64();

  ScanScheduler sched;
  AdmissionOptions ao;
  ao.max_concurrent = 2;
  ao.max_queue_depth = 64;
  ao.queue_timeout_ms = 30000;
  AdmissionController adm(ao);
  std::vector<std::thread> threads;
  std::atomic<int> bad{0};
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&, i] {
      const bool join = i % 2 == 0;
      const Query& q = join ? join_q : scan_q;
      QueryResult r =
          join ? ExecPlan(&db_, q, HashJoinPlan(AccessPath::Kind::kCsiScan), 2,
                     &sched, &adm)
               : RunPlanned(&db_, q, 2, &sched, &adm);
      if (!r.ok() || r.rows.size() != 1 ||
          r.rows[0][0].i64() != (join ? join_ref : scan_ref)) {
        ++bad;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(adm.running(), 0);
  EXPECT_EQ(adm.grant_in_use(), 0u);
  EXPECT_LE(adm.peak_running(), 2);
}

// ---------------------------------------------------------------------
// A failpoint kill mid-build must leak neither latches nor admission
// passes: the statement fails, accounting returns to zero, and the same
// query (and DML on the same tables) succeed immediately afterwards.
// ---------------------------------------------------------------------

TEST_F(BatchJoinTest, FailpointMidBuildLeaksNothing) {
  MakeFacts(30000, 399);
  MakeDim("dim", 400, [](int i) { return i; });
  Query q = WideJoinQuery("fact_csi", "dim", /*attr_eq=*/3);
  AdmissionController adm;
  {
    ScopedFailPoint fp("exec.join_build",
                       FailSpec::Always(Code::kIoError, "mid-build kill"));
    QueryResult r = ExecPlan(&db_, q, HashJoinPlan(AccessPath::Kind::kCsiScan),
                        /*max_dop=*/4, nullptr, &adm);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(r.status.IsIoError()) << r.status.ToString();
  }
  EXPECT_EQ(adm.running(), 0);
  EXPECT_EQ(adm.grant_in_use(), 0u);
  // No leaked admission pass or latch: the query and a write on the same
  // table both run to completion.
  QueryResult ok = ExecPlan(&db_, q, HashJoinPlan(AccessPath::Kind::kCsiScan),
                       /*max_dop=*/4, nullptr, &adm);
  ASSERT_TRUE(ok.ok()) << ok.status.ToString();
  EXPECT_GT(ok.row_count, 0u);
  Query ins;
  ins.kind = Query::Kind::kInsert;
  ins.base.table = "fact_csi";
  ins.insert_rows.push_back({Value::Int64(1), Value::Int64(1)});
  QueryResult ri = RunPlanned(&db_, ins);
  EXPECT_TRUE(ri.ok()) << ri.status.ToString();
}

}  // namespace
}  // namespace hd
