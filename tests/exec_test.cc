// Integration tests: optimizer + executor over all physical designs.
// Core invariant: every query must return identical results no matter
// which combination of heap / B+ tree / columnstore serves it.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>

#include "common/rng.h"
#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "workload/micro.h"
#include "workload/tpch.h"

namespace hd {
namespace {

QueryResult RunQ(Database* db, const Query& q, uint64_t grant = 4ull << 30,
                int max_dop = 4) {
  Optimizer opt(db);
  Configuration cfg = Configuration::FromCatalog(*db);
  PlanOptions popts;
  popts.memory_grant_bytes = grant;
  popts.max_dop = max_dop;
  auto plan = opt.Plan(q, cfg, popts);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  ExecContext ctx;
  ctx.db = db;
  ctx.memory_grant_bytes = grant;
  ctx.max_dop = max_dop;
  Executor ex(ctx);
  QueryResult r = ex.Execute(q, plan->plan);
  EXPECT_TRUE(r.ok()) << r.status.ToString() << " plan=" << r.plan_desc;
  return r;
}

QueryResult RunWithPlan(Database* db, const Query& q, const PhysicalPlan& p) {
  ExecContext ctx;
  ctx.db = db;
  Executor ex(ctx);
  QueryResult r = ex.Execute(q, p);
  EXPECT_TRUE(r.ok()) << r.status.ToString();
  return r;
}

// ---------------------------------------------------------------------
// Q1-style aggregation identical across designs.
// ---------------------------------------------------------------------

struct DesignCase {
  const char* name;
  PrimaryKind primary;
  bool secondary_csi;
  bool secondary_btree_on_col0;
};

class DesignSweepTest : public ::testing::TestWithParam<DesignCase> {};

TEST_P(DesignSweepTest, Q1SameAnswerEverywhere) {
  const DesignCase& dc = GetParam();
  Database db;
  MicroOptions mo;
  mo.rows = 50000;
  mo.max_value = 999;  // lots of duplicates
  Table* t = MakeUniformIntTable(&db, "t", 2, mo);
  ASSERT_NE(t, nullptr);

  // Reference answer from a plain heap scan. MicroQ1 truncates the cutoff:
  // 0.5 * 999 -> 499.
  const int64_t cutoff = static_cast<int64_t>(0.5 * 999);
  int64_t ref_sum = 0;
  uint64_t ref_cnt = 0;
  t->ScanAll(
      [&](int64_t, const int64_t* row) {
        if (row[0] < cutoff) {
          ref_sum += row[0];
          ++ref_cnt;
        }
        return true;
      },
      nullptr);

  if (dc.primary == PrimaryKind::kBTree) {
    ASSERT_TRUE(t->SetPrimary(PrimaryKind::kBTree, {0}).ok());
  } else if (dc.primary == PrimaryKind::kColumnStore) {
    ASSERT_TRUE(t->SetPrimary(PrimaryKind::kColumnStore).ok());
  }
  if (dc.secondary_csi) ASSERT_TRUE(t->CreateSecondaryColumnStore("csi").ok());
  if (dc.secondary_btree_on_col0) {
    ASSERT_TRUE(t->CreateSecondaryBTree("ix0", {0}, {1}).ok());
  }

  Query q = MicroQ1("t", 0.5, 999);
  QueryResult r = RunQ(&db, q);
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].i64(), ref_sum) << r.plan_desc;
  (void)ref_cnt;
}

INSTANTIATE_TEST_SUITE_P(
    Designs, DesignSweepTest,
    ::testing::Values(
        DesignCase{"heap", PrimaryKind::kHeap, false, false},
        DesignCase{"heap_csi", PrimaryKind::kHeap, true, false},
        DesignCase{"heap_btree", PrimaryKind::kHeap, false, true},
        DesignCase{"btree", PrimaryKind::kBTree, false, false},
        DesignCase{"btree_csi", PrimaryKind::kBTree, true, false},
        DesignCase{"csi", PrimaryKind::kColumnStore, false, false},
        DesignCase{"csi_btree", PrimaryKind::kColumnStore, false, true}),
    [](const ::testing::TestParamInfo<DesignCase>& i) {
      return std::string(i.param.name);
    });

// ---------------------------------------------------------------------
// Order by / group by.
// ---------------------------------------------------------------------

TEST(ExecTest, Q2OrderByCorrect) {
  Database db;
  MicroOptions mo;
  mo.rows = 20000;
  mo.max_value = 10000;
  MakeUniformIntTable(&db, "t", 2, mo);
  Query q = MicroQ2("t", 0.1, 10000);
  QueryResult r = RunQ(&db, q);
  EXPECT_GT(r.row_count, 100u);
  for (size_t i = 1; i < r.rows.size(); ++i) {
    EXPECT_LE(r.rows[i - 1][1].i64(), r.rows[i][1].i64());
  }
  for (const auto& row : r.rows) EXPECT_LT(row[0].i64(), 1000);
}

TEST(ExecTest, Q2SortAvoidedByBTreeOnOrderCol) {
  Database db;
  MicroOptions mo;
  mo.rows = 200000;
  mo.max_value = 10000;
  Table* t = MakeUniformIntTable(&db, "t", 2, mo);
  ASSERT_TRUE(t->SetPrimary(PrimaryKind::kBTree, {1}).ok());
  Query q = MicroQ2("t", 1.0, 10000);  // unselective: order dominates
  Optimizer opt(&db);
  auto plan = opt.Plan(q, Configuration::FromCatalog(db), {});
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->plan.explicit_sort) << plan->plan.Describe();
  QueryResult r = RunWithPlan(&db, q, plan->plan);
  for (size_t i = 1; i < r.rows.size(); ++i) {
    EXPECT_LE(r.rows[i - 1][1].i64(), r.rows[i][1].i64());
  }
}

TEST(ExecTest, Q3GroupByMatchesReference) {
  Database db;
  Table* t = MakeGroupedTable(&db, "t", 30000, 100, 5);
  std::vector<int64_t> ref(100, 0);
  t->ScanAll(
      [&](int64_t, const int64_t* row) {
        ref[row[0]] += row[1];
        return true;
      },
      nullptr);
  Query q = MicroQ3("t");
  q.order_by = {ColRef{0, 0}};
  QueryResult r = RunQ(&db, q);
  ASSERT_EQ(r.rows.size(), 100u);
  for (int g = 0; g < 100; ++g) {
    EXPECT_EQ(r.rows[g][0].i64(), g);
    EXPECT_EQ(r.rows[g][1].i64(), ref[g]);
  }
}

TEST(ExecTest, StreamAggMatchesHashAgg) {
  Database db;
  Table* t = MakeGroupedTable(&db, "t", 50000, 1000, 6);
  ASSERT_TRUE(t->SetPrimary(PrimaryKind::kBTree, {0}).ok());
  Query q = MicroQ3("t");
  // Force streaming via a plan.
  PhysicalPlan stream;
  stream.base.kind = AccessPath::Kind::kBTreeFullScan;
  stream.agg = AggMethod::kStream;
  stream.dop = 1;
  QueryResult rs = RunWithPlan(&db, q, stream);
  PhysicalPlan hash = stream;
  hash.agg = AggMethod::kHash;
  QueryResult rh = RunWithPlan(&db, q, hash);
  ASSERT_EQ(rs.row_count, rh.row_count);
  // Streamed output is in group order already; sort hash output rows.
  std::map<int64_t, int64_t> hm;
  for (auto& row : rh.rows) hm[row[0].i64()] = row[1].i64();
  for (auto& row : rs.rows) {
    EXPECT_EQ(hm[row[0].i64()], row[1].i64());
  }
}

TEST(ExecTest, HashAggSpillsUnderSmallGrantAndStaysCorrect) {
  Database db;
  Table* t = MakeGroupedTable(&db, "t", 100000, 50000, 7);
  (void)t;
  Query q = MicroQ3("t");
  QueryResult big = RunQ(&db, q, /*grant=*/4ull << 30, /*dop=*/1);
  QueryResult small = RunQ(&db, q, /*grant=*/256 << 10, /*dop=*/1);
  EXPECT_TRUE(small.spilled);
  EXPECT_FALSE(big.spilled);
  EXPECT_EQ(big.row_count, small.row_count);
  EXPECT_GT(small.metrics.spill_bytes.load(), 0u);
}

TEST(ExecTest, SortSpillsUnderSmallGrantAndStaysSorted) {
  Database db;
  MicroOptions mo;
  mo.rows = 100000;
  mo.max_value = 1u << 30;
  MakeUniformIntTable(&db, "t", 2, mo);
  Query q = MicroQ2("t", 1.0, 1u << 30);
  QueryResult r = RunQ(&db, q, /*grant=*/128 << 10, /*dop=*/1);
  EXPECT_TRUE(r.spilled);
  EXPECT_EQ(r.row_count, 100000u);
  for (size_t i = 1; i < r.rows.size(); ++i) {
    EXPECT_LE(r.rows[i - 1][1].i64(), r.rows[i][1].i64());
  }
}

TEST(ExecTest, LimitStopsEarly) {
  Database db;
  MicroOptions mo;
  mo.rows = 100000;
  MakeUniformIntTable(&db, "t", 1, mo);
  Query q;
  q.base.table = "t";
  q.select_cols = {ColRef{0, 0}};
  q.limit = 10;
  QueryResult r = RunQ(&db, q, 4ull << 30, /*dop=*/1);
  EXPECT_EQ(r.row_count, 10u);
  EXPECT_LT(r.metrics.rows_scanned.load(), 100000u);
}

// ---------------------------------------------------------------------
// Joins.
// ---------------------------------------------------------------------

class JoinTest : public ::testing::Test {
 protected:
  JoinTest() {
    // Fact: 40000 rows, fk in [0, 400), measure.
    auto fact = db_.CreateTable(
        "fact", Schema({{"fk", ValueType::kInt64, 0},
                        {"measure", ValueType::kInt64, 0}}));
    Rng rng(8);
    std::vector<std::vector<int64_t>> fcols(2);
    for (int i = 0; i < 40000; ++i) {
      fcols[0].push_back(rng.Uniform(0, 399));
      fcols[1].push_back(rng.Uniform(0, 1000));
    }
    fact.value()->BulkLoadPacked(std::move(fcols));
    // Dim: 400 rows, pk + attr (attr = pk % 10).
    auto dim = db_.CreateTable("dim", Schema({{"pk", ValueType::kInt64, 0},
                                              {"attr", ValueType::kInt64, 0}}));
    std::vector<std::vector<int64_t>> dcols(2);
    for (int i = 0; i < 400; ++i) {
      dcols[0].push_back(i);
      dcols[1].push_back(i % 10);
    }
    dim.value()->BulkLoadPacked(std::move(dcols));
    // Reference: sum of measure where dim.attr == 3.
    db_.GetTable("fact")->ScanAll(
        [&](int64_t, const int64_t* row) {
          if (row[0] % 10 == 3) ref_sum_ += row[1];
          return true;
        },
        nullptr);
  }

  Query JoinQuery() {
    Query q;
    q.base.table = "fact";
    JoinClause jc;
    jc.dim.table = "dim";
    jc.dim.preds.push_back(Pred::Eq(1, Value::Int64(3)));
    jc.base_col = 0;
    jc.dim_col = 0;
    q.joins.push_back(jc);
    q.aggs.push_back(AggSpec::Sum(Expr::Col(0, 1), "s"));
    return q;
  }

  Database db_;
  int64_t ref_sum_ = 0;
};

TEST_F(JoinTest, HashJoin) {
  PhysicalPlan p;
  p.base.kind = AccessPath::Kind::kHeapScan;
  JoinStep js;
  js.join_idx = 0;
  js.method = JoinStep::Method::kHash;
  js.dim_path.kind = AccessPath::Kind::kHeapScan;
  p.joins.push_back(js);
  p.agg = AggMethod::kHash;
  QueryResult r = RunWithPlan(&db_, JoinQuery(), p);
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].i64(), ref_sum_);
}

TEST_F(JoinTest, IndexNLJoin) {
  Table* dim = db_.GetTable("dim");
  ASSERT_TRUE(dim->SetPrimary(PrimaryKind::kBTree, {0}).ok());
  PhysicalPlan p;
  p.base.kind = AccessPath::Kind::kHeapScan;
  JoinStep js;
  js.join_idx = 0;
  js.method = JoinStep::Method::kIndexNL;
  js.dim_path.kind = AccessPath::Kind::kBTreeRange;
  p.joins.push_back(js);
  p.agg = AggMethod::kHash;
  QueryResult r = RunWithPlan(&db_, JoinQuery(), p);
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].i64(), ref_sum_);
}

TEST_F(JoinTest, DimDrivenPlan) {
  Table* fact = db_.GetTable("fact");
  ASSERT_TRUE(fact->SetPrimary(PrimaryKind::kBTree, {0}).ok());
  PhysicalPlan p;
  p.base.kind = AccessPath::Kind::kBTreeRange;
  p.base.seek_cols = 1;
  p.driving_join = 0;
  JoinStep js;
  js.join_idx = 0;
  js.method = JoinStep::Method::kHash;
  js.dim_path.kind = AccessPath::Kind::kHeapScan;
  p.joins.push_back(js);
  p.agg = AggMethod::kHash;
  QueryResult r = RunWithPlan(&db_, JoinQuery(), p);
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].i64(), ref_sum_);
}

TEST_F(JoinTest, OptimizerPicksSomethingCorrect) {
  Table* fact = db_.GetTable("fact");
  ASSERT_TRUE(fact->SetPrimary(PrimaryKind::kBTree, {0}).ok());
  Table* dim = db_.GetTable("dim");
  ASSERT_TRUE(dim->SetPrimary(PrimaryKind::kBTree, {0}).ok());
  QueryResult r = RunQ(&db_, JoinQuery());
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].i64(), ref_sum_);
}

TEST_F(JoinTest, GroupByDimColumn) {
  Query q;
  q.base.table = "fact";
  JoinClause jc;
  jc.dim.table = "dim";
  jc.base_col = 0;
  jc.dim_col = 0;
  q.joins.push_back(jc);
  q.group_by = {ColRef{1, 1}};  // dim.attr
  q.aggs.push_back(AggSpec::CountStar());
  QueryResult r = RunQ(&db_, q);
  EXPECT_EQ(r.row_count, 10u);
  uint64_t total = 0;
  for (auto& row : r.rows) total += row[1].i64();
  EXPECT_EQ(total, 40000u);
}

// ---------------------------------------------------------------------
// DML via the executor.
// ---------------------------------------------------------------------

TEST(DmlTest, UpdateTopNAppliesSets) {
  Database db;
  TpchOptions to;
  to.rows = 50000;
  Table* t = MakeLineitem(&db, "lineitem", to);
  ASSERT_TRUE(t->SetPrimary(
      PrimaryKind::kBTree,
      {LineitemCols::kOrderKey, LineitemCols::kLineNumber}).ok());
  ASSERT_TRUE(t->CreateSecondaryBTree("ix_ship", {LineitemCols::kShipDate},
                                      {}).ok());
  const int32_t day = kTpchShipDateLo + 100;
  // Count qualifying rows and a checksum before.
  Query count_q;
  count_q.base.table = "lineitem";
  count_q.base.preds.push_back(Pred::Eq(LineitemCols::kShipDate, Value::Date(day)));
  count_q.aggs.push_back(AggSpec::CountStar());
  count_q.aggs.push_back(
      AggSpec::Sum(Expr::Col(0, LineitemCols::kQuantity), "q"));
  QueryResult before = RunQ(&db, count_q);
  const int64_t n_match = before.rows[0][0].i64();
  const double q_before = before.rows[0][1].f64();
  ASSERT_GT(n_match, 10);

  Query upd = TpchQ4("lineitem", 10, day);
  QueryResult r = RunQ(&db, upd);
  EXPECT_EQ(r.affected_rows, 10u);

  QueryResult after = RunQ(&db, count_q);
  EXPECT_EQ(after.rows[0][0].i64(), n_match);
  EXPECT_NEAR(after.rows[0][1].f64(), q_before + 10.0, 1e-6);
}

TEST(DmlTest, UpdateMaintainsSecondaryCsi) {
  Database db;
  TpchOptions to;
  to.rows = 20000;
  Table* t = MakeLineitem(&db, "lineitem", to);
  ASSERT_TRUE(t->CreateSecondaryColumnStore("csi").ok());
  const int32_t day = kTpchShipDateLo + 50;
  // The date is random-uniform; update at most as many rows as exist.
  Query cnt;
  cnt.base.table = "lineitem";
  cnt.base.preds.push_back(Pred::Eq(LineitemCols::kShipDate, Value::Date(day)));
  cnt.aggs.push_back(AggSpec::CountStar());
  const uint64_t matching = RunQ(&db, cnt).rows[0][0].i64();
  ASSERT_GT(matching, 0u);
  const uint64_t n = std::min<uint64_t>(5, matching);
  Query upd = TpchQ4("lineitem", n, day);
  QueryResult r = RunQ(&db, upd);
  EXPECT_EQ(r.affected_rows, n);
  // Deleted rows live in the delete buffer; new versions in the delta.
  ColumnStoreIndex* csi = t->FindSecondary("csi")->csi.get();
  EXPECT_EQ(csi->delete_buffer_rows(), n);
  EXPECT_EQ(csi->delta_rows(), n);
  EXPECT_EQ(csi->num_rows(), 20000u);
}

TEST(DmlTest, DeleteRemovesRows) {
  Database db;
  MicroOptions mo;
  mo.rows = 10000;
  mo.max_value = 99;
  Table* t = MakeUniformIntTable(&db, "t", 1, mo);
  (void)t;
  Query del;
  del.kind = Query::Kind::kDelete;
  del.base.table = "t";
  del.base.preds.push_back(Pred::Eq(0, Value::Int64(42)));
  QueryResult r = RunQ(&db, del);
  EXPECT_GT(r.affected_rows, 0u);
  Query cnt;
  cnt.base.table = "t";
  cnt.base.preds.push_back(Pred::Eq(0, Value::Int64(42)));
  cnt.aggs.push_back(AggSpec::CountStar());
  QueryResult c = RunQ(&db, cnt);
  EXPECT_EQ(c.rows[0][0].i64(), 0);
}

TEST(DmlTest, InsertVisible) {
  Database db;
  MicroOptions mo;
  mo.rows = 1000;
  mo.max_value = 99;
  MakeUniformIntTable(&db, "t", 2, mo);
  Query ins;
  ins.kind = Query::Kind::kInsert;
  ins.base.table = "t";
  ins.insert_rows.push_back({Value::Int64(123456), Value::Int64(1)});
  QueryResult r = RunQ(&db, ins);
  EXPECT_EQ(r.affected_rows, 1u);
  Query cnt;
  cnt.base.table = "t";
  cnt.base.preds.push_back(Pred::Eq(0, Value::Int64(123456)));
  cnt.aggs.push_back(AggSpec::CountStar());
  EXPECT_EQ(RunQ(&db, cnt).rows[0][0].i64(), 1);
}

// ---------------------------------------------------------------------
// Parallelism and metrics.
// ---------------------------------------------------------------------

TEST(ExecTest, ParallelAndSerialAgree) {
  Database db;
  MicroOptions mo;
  mo.rows = 300000;
  mo.max_value = 1u << 30;
  Table* t = MakeUniformIntTable(&db, "t", 1, mo);
  ASSERT_TRUE(t->SetPrimary(PrimaryKind::kColumnStore).ok());
  Query q = MicroQ1("t", 0.7, 1u << 30);
  PhysicalPlan serial;
  serial.base.kind = AccessPath::Kind::kCsiScan;
  serial.agg = AggMethod::kHash;
  serial.dop = 1;
  PhysicalPlan par = serial;
  par.dop = 4;
  QueryResult rs = RunWithPlan(&db, q, serial);
  QueryResult rp = RunWithPlan(&db, q, par);
  EXPECT_EQ(rs.rows[0][0].i64(), rp.rows[0][0].i64());
}

TEST(ExecTest, ColdRunChargesIoHotDoesNot) {
  Database db;
  MicroOptions mo;
  mo.rows = 200000;
  MakeUniformIntTable(&db, "t", 1, mo);
  Query q = MicroQ1("t", 1.0, mo.max_value);
  db.ColdStart();
  QueryResult cold = RunQ(&db, q);
  EXPECT_GT(cold.metrics.sim_io_ms(), 0.0);
  QueryResult hot = RunQ(&db, q);
  EXPECT_DOUBLE_EQ(hot.metrics.sim_io_ms(), 0.0);
  EXPECT_EQ(cold.rows[0][0].i64(), hot.rows[0][0].i64());
}

TEST(ExecTest, ImpossiblePredicateEmptyResult) {
  Database db;
  MicroOptions mo;
  mo.rows = 1000;
  MakeUniformIntTable(&db, "t", 1, mo);
  Query q;
  q.base.table = "t";
  q.base.preds.push_back(Pred::Between(0, Value::Int64(10), Value::Int64(5)));
  q.aggs.push_back(AggSpec::CountStar());
  QueryResult r = RunQ(&db, q);
  EXPECT_EQ(r.rows[0][0].i64(), 0);
}

// ---------------------------------------------------------------------
// Encoded-domain aggregate pushdown: bit-identical to full decode across
// predicates, encodings, delta-store rows, and deleted rows.
// ---------------------------------------------------------------------

class AggPushdownTest : public ::testing::Test {
 protected:
  // Three stored shapes: sorted/runny (RLE), small domain (dict-packed),
  // wide domain (raw-packed) — pushdown must agree with the decode path
  // on every one. `model_` mirrors the table's live rows.
  void SetUp() override {
    auto t = db_.CreateTable("t", Schema({{"a", ValueType::kInt64, 0},
                                          {"b", ValueType::kInt64, 0},
                                          {"c", ValueType::kInt64, 0}}));
    ASSERT_TRUE(t.ok());
    table_ = t.value();
    Rng rng(83);
    std::vector<std::vector<int64_t>> cols(3);
    const int n = 300000;  // several row groups at the default size
    for (int i = 0; i < n; ++i) {
      const int64_t a = i / 37;                      // sorted, runny
      const int64_t b = rng.Uniform(0, 30) * 11;     // small domain
      const int64_t c = rng.Uniform(-1000000, 1000000);  // wide
      cols[0].push_back(a);
      cols[1].push_back(b);
      cols[2].push_back(c);
      model_.push_back({a, b, c});
    }
    table_->BulkLoadPacked(std::move(cols));
    ASSERT_TRUE(table_->SetPrimary(PrimaryKind::kColumnStore).ok());
  }

  // COUNT(*), SUM(b), MIN(c), MAX(c), AVG(b) under an optional predicate
  // `plo <= col[pcol] <= phi`; engine answer vs the row model.
  void CheckSweep(int pcol, int64_t plo, int64_t phi, bool with_pred,
                  QueryMetrics* out = nullptr) {
    Query q;
    q.base.table = "t";
    if (with_pred) {
      q.base.preds.push_back(
          Pred::Between(pcol, Value::Int64(plo), Value::Int64(phi)));
    }
    q.aggs.push_back(AggSpec::CountStar());
    q.aggs.push_back(AggSpec::Sum(Expr::Col(0, 1), "sb"));
    q.aggs.push_back(AggSpec::Min(Expr::Col(0, 2)));
    q.aggs.push_back(AggSpec::Max(Expr::Col(0, 2)));
    q.aggs.push_back(AggSpec::Avg(Expr::Col(0, 1)));
    QueryResult r = RunQ(&db_, q);
    ASSERT_EQ(r.rows.size(), 1u);

    int64_t cnt = 0, sum = 0;
    int64_t mn = INT64_MAX, mx = INT64_MIN;
    for (const auto& row : model_) {
      if (with_pred && (row[pcol] < plo || row[pcol] > phi)) continue;
      ++cnt;
      sum += row[1];
      mn = std::min(mn, row[2]);
      mx = std::max(mx, row[2]);
    }
    ASSERT_GT(cnt, 0) << "degenerate sweep";
    EXPECT_EQ(r.rows[0][0].i64(), cnt) << r.plan_desc;
    EXPECT_EQ(r.rows[0][1].i64(), sum) << r.plan_desc;
    EXPECT_EQ(r.rows[0][2].i64(), mn) << r.plan_desc;
    EXPECT_EQ(r.rows[0][3].i64(), mx) << r.plan_desc;
    EXPECT_NEAR(r.rows[0][4].f64(),
                static_cast<double>(sum) / static_cast<double>(cnt), 1e-9)
        << r.plan_desc;
    if (out != nullptr) *out = r.metrics;
  }

  Database db_;
  Table* table_ = nullptr;
  std::vector<std::array<int64_t, 3>> model_;
};

TEST_F(AggPushdownTest, AllPassAnswersWithoutDecoding) {
  QueryMetrics m;
  CheckSweep(0, 0, 0, /*with_pred=*/false, &m);
  // No predicate: every row group is answered in the encoded domain.
  EXPECT_GT(m.aggs_pushed_down.load(), 0u);
  EXPECT_EQ(m.rows_decoded.load(), 0u);
  EXPECT_EQ(m.rows_selected.load(), model_.size());
}

TEST_F(AggPushdownTest, PredicateOnAggregatedColumnStaysPushed) {
  // COUNT + SUM/MIN/MAX(a) with the only predicate on `a` itself: per-run
  // and per-code kernels answer without materialization.
  Query q;
  q.base.table = "t";
  q.base.preds.push_back(Pred::Between(0, Value::Int64(1000), Value::Int64(5000)));
  q.aggs.push_back(AggSpec::CountStar());
  q.aggs.push_back(AggSpec::Sum(Expr::Col(0, 0), "sa"));
  q.aggs.push_back(AggSpec::Min(Expr::Col(0, 0)));
  q.aggs.push_back(AggSpec::Max(Expr::Col(0, 0)));
  QueryResult r = RunQ(&db_, q);
  int64_t cnt = 0, sum = 0, mn = INT64_MAX, mx = INT64_MIN;
  for (const auto& row : model_) {
    if (row[0] < 1000 || row[0] > 5000) continue;
    ++cnt;
    sum += row[0];
    mn = std::min(mn, row[0]);
    mx = std::max(mx, row[0]);
  }
  EXPECT_EQ(r.rows[0][0].i64(), cnt);
  EXPECT_EQ(r.rows[0][1].i64(), sum);
  EXPECT_EQ(r.rows[0][2].i64(), mn);
  EXPECT_EQ(r.rows[0][3].i64(), mx);
  EXPECT_GT(r.metrics.aggs_pushed_down.load(), 0u);
  EXPECT_EQ(r.metrics.rows_decoded.load(), 0u);
}

TEST_F(AggPushdownTest, CrossColumnPredicateFallsBackAndAgrees) {
  // SUM(b) under a predicate on `a` needs row materialization: the scan
  // path must produce the identical answer and actually decode.
  QueryMetrics m;
  CheckSweep(0, 1000, 5000, /*with_pred=*/true, &m);
  EXPECT_GT(m.rows_decoded.load(), 0u);
}

TEST_F(AggPushdownTest, DeltaStoreRowsAreIncluded) {
  // Trickle-insert rows (they land in the delta store, scanned row-mode);
  // compressed groups keep using pushdown, and the union is exact.
  Query ins;
  ins.kind = Query::Kind::kInsert;
  ins.base.table = "t";
  Rng rng(89);
  for (int i = 0; i < 500; ++i) {
    const int64_t a = 9000 + rng.Uniform(0, 100);
    const int64_t b = rng.Uniform(0, 30) * 11;
    const int64_t c = rng.Uniform(-2000000, 2000000);  // widen min/max
    ins.insert_rows.push_back(
        {Value::Int64(a), Value::Int64(b), Value::Int64(c)});
    model_.push_back({a, b, c});
  }
  QueryResult ir = RunQ(&db_, ins);
  ASSERT_EQ(ir.affected_rows, 500u);

  QueryMetrics m;
  CheckSweep(0, 0, 0, /*with_pred=*/false, &m);
  EXPECT_GT(m.aggs_pushed_down.load(), 0u);  // compressed groups still pushed
  CheckSweep(1, 110, 220, /*with_pred=*/true, &m);
  CheckSweep(2, -500000, 500000, /*with_pred=*/true, &m);
}

TEST_F(AggPushdownTest, DeletedRowsForcePerGroupFallback) {
  // Delete a value band on the wide column: the primary CSI sets delete
  // bitmap bits across every row group, so pushdown must decline and the
  // decode path must subtract exactly the deleted rows.
  Query del;
  del.kind = Query::Kind::kDelete;
  del.base.table = "t";
  del.base.preds.push_back(
      Pred::Between(2, Value::Int64(-3000), Value::Int64(3000)));
  QueryResult dr = RunQ(&db_, del);
  ASSERT_GT(dr.affected_rows, 0u);
  std::erase_if(model_, [](const std::array<int64_t, 3>& row) {
    return row[2] >= -3000 && row[2] <= 3000;
  });

  QueryMetrics m;
  CheckSweep(0, 0, 0, /*with_pred=*/false, &m);
  EXPECT_GT(m.rows_decoded.load(), 0u);  // fallback actually ran
  CheckSweep(0, 1000, 5000, /*with_pred=*/true, &m);
  CheckSweep(1, 110, 220, /*with_pred=*/true, &m);
}

TEST(ExecTest, MinMaxAvgAggregates) {
  Database db;
  auto t = db.CreateTable("t", Schema({{"a", ValueType::kInt64, 0},
                                       {"d", ValueType::kDouble, 0}}));
  std::vector<std::vector<int64_t>> cols(2);
  for (int i = 1; i <= 100; ++i) {
    cols[0].push_back(i);
    cols[1].push_back(t.value()->PackValue(1, Value::Double(i * 0.5)));
  }
  t.value()->BulkLoadPacked(std::move(cols));
  Query q;
  q.base.table = "t";
  q.aggs.push_back(AggSpec::Min(Expr::Col(0, 0)));
  q.aggs.push_back(AggSpec::Max(Expr::Col(0, 1)));
  q.aggs.push_back(AggSpec::Avg(Expr::Col(0, 0)));
  QueryResult r = RunQ(&db, q);
  EXPECT_EQ(r.rows[0][0].i64(), 1);
  EXPECT_DOUBLE_EQ(r.rows[0][1].f64(), 50.0);
  EXPECT_DOUBLE_EQ(r.rows[0][2].f64(), 50.5);
}

}  // namespace
}  // namespace hd
