// Failpoint registry semantics (trigger determinism, scoping, concurrent
// arming) and Backoff timing bounds.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "common/backoff.h"
#include "common/failpoint.h"
#include "common/metrics.h"

namespace hd {
namespace {

// Every test disarms everything on entry and exit so a failed assertion
// cannot leak an armed point into an unrelated test.
class FailPointTest : public ::testing::Test {
 protected:
  void SetUp() override { FailPoints::Instance().DisarmAll(); }
  void TearDown() override { FailPoints::Instance().DisarmAll(); }
};

TEST_F(FailPointTest, UnarmedIsFreeAndOk) {
  EXPECT_FALSE(FailPoints::AnyArmed());
  EXPECT_TRUE(EvalFailPoint("never.armed").ok());
  EXPECT_EQ(FailPoints::Instance().EvalCount("never.armed"), 0u);
}

TEST_F(FailPointTest, AlwaysFiresEveryTime) {
  ScopedFailPoint fp("t.always", FailSpec::Always(Code::kIoError, "boom"));
  for (int i = 0; i < 5; ++i) {
    Status s = EvalFailPoint("t.always");
    ASSERT_TRUE(s.IsIoError());
    // The injected message names the failpoint for diagnosability.
    EXPECT_NE(s.ToString().find("t.always"), std::string::npos);
  }
  EXPECT_EQ(FailPoints::Instance().EvalCount("t.always"), 5u);
  EXPECT_EQ(FailPoints::Instance().HitCount("t.always"), 5u);
}

TEST_F(FailPointTest, OneShotFiresExactlyOnce) {
  ScopedFailPoint fp("t.once", FailSpec::OneShot(Code::kAborted));
  EXPECT_TRUE(EvalFailPoint("t.once").IsAborted());
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(EvalFailPoint("t.once").ok());
  EXPECT_EQ(FailPoints::Instance().HitCount("t.once"), 1u);
  EXPECT_EQ(FailPoints::Instance().EvalCount("t.once"), 11u);
  // Re-arming resets the one-shot.
  FailPoints::Instance().Arm("t.once", FailSpec::OneShot(Code::kAborted));
  EXPECT_TRUE(EvalFailPoint("t.once").IsAborted());
}

TEST_F(FailPointTest, EveryNthCadence) {
  ScopedFailPoint fp("t.nth", FailSpec::EveryNth(3, Code::kIoError));
  std::vector<int> fired;
  for (int i = 1; i <= 12; ++i) {
    if (!EvalFailPoint("t.nth").ok()) fired.push_back(i);
  }
  EXPECT_EQ(fired, (std::vector<int>{3, 6, 9, 12}));
  EXPECT_EQ(FailPoints::Instance().HitCount("t.nth"), 4u);
}

TEST_F(FailPointTest, ProbabilityIsDeterministicPerSeed) {
  auto pattern = [](uint64_t seed) {
    FailPoints::Instance().Arm(
        "t.prob", FailSpec::Probability(0.3, seed, Code::kIoError));
    std::vector<bool> fires;
    for (int i = 0; i < 200; ++i) fires.push_back(!EvalFailPoint("t.prob").ok());
    FailPoints::Instance().Disarm("t.prob");
    return fires;
  };
  const auto a = pattern(7);
  const auto b = pattern(7);
  const auto c = pattern(8);
  EXPECT_EQ(a, b);  // same seed => identical fire pattern
  EXPECT_NE(a, c);  // different seed => different pattern
  const auto hits = static_cast<size_t>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(hits, 200 * 0.3 / 2);  // roughly p of evaluations fire
  EXPECT_LT(hits, 200 * 0.3 * 2);
}

TEST_F(FailPointTest, ScopedDisarmsOnExit) {
  {
    ScopedFailPoint fp("t.scoped", FailSpec::Always(Code::kIoError));
    EXPECT_TRUE(FailPoints::AnyArmed());
    EXPECT_FALSE(EvalFailPoint("t.scoped").ok());
  }
  EXPECT_FALSE(FailPoints::AnyArmed());
  EXPECT_TRUE(EvalFailPoint("t.scoped").ok());
  EXPECT_FALSE(FailPoints::Instance().Armed("t.scoped"));
}

TEST_F(FailPointTest, DisarmAllClearsEverything) {
  FailPoints::Instance().Arm("t.a", FailSpec::Always(Code::kIoError));
  FailPoints::Instance().Arm("t.b", FailSpec::Always(Code::kAborted));
  EXPECT_TRUE(FailPoints::AnyArmed());
  FailPoints::Instance().DisarmAll();
  EXPECT_FALSE(FailPoints::AnyArmed());
  EXPECT_TRUE(EvalFailPoint("t.a").ok());
  EXPECT_TRUE(EvalFailPoint("t.b").ok());
}

TEST_F(FailPointTest, LatencyOnlyPointSleepsButSucceeds) {
  ScopedFailPoint fp("t.slow", FailSpec::Latency(20));
  Timer t;
  EXPECT_TRUE(EvalFailPoint("t.slow").ok());
  EXPECT_GE(t.ElapsedMs(), 15.0);  // slack for coarse sleep granularity
  EXPECT_EQ(FailPoints::Instance().HitCount("t.slow"), 1u);
}

TEST_F(FailPointTest, SimIoChargedIntoMetrics) {
  FailSpec s = FailSpec::Always(Code::kOk, "stall");
  s.sim_io_ms = 7.5;
  ScopedFailPoint fp("t.stall", std::move(s));
  QueryMetrics m;
  EXPECT_TRUE(EvalFailPoint("t.stall", &m).ok());
  EXPECT_DOUBLE_EQ(m.sim_io_ms(), 7.5);
  // Without a metrics block the charge is simply dropped.
  EXPECT_TRUE(EvalFailPoint("t.stall", nullptr).ok());
}

TEST_F(FailPointTest, ConcurrentArmDisarmEvaluate) {
  // Arm/Disarm racing Evaluate from many threads must not crash, deadlock,
  // or corrupt counters. TSan/ASan CI runs this too.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> injected{0};
  std::vector<std::thread> ts;
  for (int w = 0; w < 4; ++w) {
    ts.emplace_back([&] {
      while (!stop.load()) {
        if (!EvalFailPoint("t.race").ok()) injected.fetch_add(1);
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    FailPoints::Instance().Arm("t.race", FailSpec::Always(Code::kIoError));
    std::this_thread::sleep_for(std::chrono::microseconds(50));
    FailPoints::Instance().Disarm("t.race");
  }
  stop = true;
  for (auto& t : ts) t.join();
  EXPECT_FALSE(FailPoints::AnyArmed());
  EXPECT_GT(injected.load(), 0u);  // the armed windows were observed
}

// ---------------- Backoff ----------------

TEST(BackoffTest, DelaysAreCappedExponentialWithEqualJitter) {
  Backoff b(1.0, 16.0, 100, 42);
  double raw = 1.0;
  for (int attempt = 0; attempt < 10; ++attempt) {
    const double d = b.NextDelayMs();
    EXPECT_GE(d, raw / 2) << "attempt " << attempt;
    EXPECT_LE(d, raw) << "attempt " << attempt;
    raw = std::min(raw * 2, 16.0);
  }
  // Past the cap every delay stays within [cap/2, cap].
  for (int i = 0; i < 5; ++i) {
    const double d = b.NextDelayMs();
    EXPECT_GE(d, 8.0);
    EXPECT_LE(d, 16.0);
  }
}

TEST(BackoffTest, SeededJitterIsReproducible) {
  Backoff a(0.5, 8.0, 50, 9), b(0.5, 8.0, 50, 9), c(0.5, 8.0, 50, 10);
  bool any_diff = false;
  for (int i = 0; i < 20; ++i) {
    const double da = a.NextDelayMs();
    EXPECT_DOUBLE_EQ(da, b.NextDelayMs());
    any_diff |= da != c.NextDelayMs();
  }
  EXPECT_TRUE(any_diff);  // different seed => different jitter stream
}

TEST(BackoffTest, BudgetExhaustion) {
  Backoff b(0.01, 0.02, 3, 1);
  EXPECT_FALSE(b.Exhausted());
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(b.Exhausted());
    b.NextDelayMs();
  }
  EXPECT_TRUE(b.Exhausted());
  EXPECT_EQ(b.attempts(), 3);
}

TEST(BackoffTest, TotalAccumulatesAndSleepIsReal) {
  Backoff b(5.0, 5.0, 10, 3);
  Timer t;
  const double d1 = b.SleepNext();
  const double d2 = b.SleepNext();
  EXPECT_GE(t.ElapsedMs(), (d1 + d2) * 0.8);  // real wall-clock wait
  EXPECT_DOUBLE_EQ(b.total_backoff_ms(), d1 + d2);
}

TEST(BackoffTest, ZeroBudgetExhaustsImmediately) {
  Backoff b(1.0, 8.0, 0, 1);
  EXPECT_TRUE(b.Exhausted());
}

}  // namespace
}  // namespace hd
