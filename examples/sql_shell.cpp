// A miniature SQL shell over the engine: reads statements from stdin (or
// runs a scripted demo when stdin is a terminal-less pipe with no input),
// plans them against the current physical design, executes, and prints
// results with plan and timing.
//
//   $ ./build/examples/sql_shell
//   sql> SELECT region, sum(revenue) FROM sales GROUP BY region
//   sql> EXPLAIN ANALYZE SELECT count(*) FROM sales WHERE day < 40
//
// Prefix any statement with EXPLAIN to see the chosen physical plan with
// optimizer estimates (the statement is not executed), or with EXPLAIN
// ANALYZE to execute it and print the plan annotated with per-operator
// actuals (see docs/OBSERVABILITY.md).
//
// Meta-commands (not SQL):
//   .stats               print the process telemetry registry (counters,
//                        gauges, latency histograms with p50/p95/p99/p999)
//                        plus derived health ratios.
//   .stats prom          same registry in Prometheus text format.
//   .queries [top]       query store: most recent captured statements
//                        (trace id, fingerprint, latency, rows).
//   .queries slow        the slow-query log (--slow-query-ms threshold).
//   .queries fingerprints  per-statement-class aggregates: calls, total
//                        and p95 latency, rows, decode bytes.
//
// Flags:
//   --trace <out.json>   record morsel-level execution events and write a
//                        chrome://tracing / Perfetto-compatible JSON file
//                        on exit.
//   --dop <n>            cap the degree of parallelism (default: hardware
//                        concurrency). Parallel plans schedule morsels and
//                        emit trace events only when the effective DOP > 1.
//   --stats-json <file>  append hd-stats/1 JSONL telemetry snapshots to
//                        <file> from a background sampler thread (one final
//                        snapshot is always written on exit).
//   --stats-interval <ms> sampler tick interval (default 1000).
//   --stats-prom <file>  write a final Prometheus text-format snapshot of
//                        the telemetry registry on exit.
//   --shared-scans       route non-transactional columnstore SELECTs
//                        through the cooperative shared-scan scheduler
//                        (EXPLAIN ANALYZE then shows shared_scan=attached
//                        when a statement joined a pass).
//   --admission <n>      gate statements behind an admission controller
//                        with n concurrent slots (overload surfaces as a
//                        resource-exhausted error, visible in .stats under
//                        admission.*).
//   --data-dir <path>    durable root (WAL + checkpoints). Recovers the
//                        directory's contents on startup, loads the demo
//                        table only when it is fresh, and checkpoints on
//                        clean exit.
//   --durability <m>     off | commit | group (default group when
//                        --data-dir is given).
//   --query-store-capacity <n>  retained query-store records (default
//                        1024; 0 disables capture and `.queries`).
//   --slow-query-ms <ms> slow-query log threshold (default: disabled).
//   --qlog <file>        append one hd-qlog/1 JSONL line per statement —
//                        the advisor replays it via
//                        --workload-from-capture.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "common/telemetry.h"
#include "common/trace.h"
#include "exec/admission.h"
#include "exec/executor.h"
#include "exec/explain.h"
#include "exec/scan_scheduler.h"
#include "obs/query_store.h"
#include "optimizer/optimizer.h"
#include "sql/parser.h"

using namespace hd;

namespace {

int g_max_dop = 0;  // 0 = hardware default
std::unique_ptr<ScanScheduler> g_scan_scheduler;
std::unique_ptr<AdmissionController> g_admission;
std::unique_ptr<QueryStore> g_query_store;
uint64_t g_next_trace = 0;  // shell = session 0 in the trace-id scheme

/// `.stats` / `.stats prom`: dump the process telemetry registry.
void PrintStats(bool prometheus) {
  TelemetrySnapshot snap = Telemetry::Instance().Snapshot();
  if (prometheus) {
    std::printf("%s", snap.ToPrometheus().c_str());
    return;
  }
  std::printf("-- counters --\n");
  for (const auto& [name, v] : snap.counters) {
    std::printf("  %-24s %llu\n", name.c_str(),
                static_cast<unsigned long long>(v));
  }
  std::printf("-- gauges --\n");
  for (const auto& [name, v] : snap.gauges) {
    std::printf("  %-24s %lld\n", name.c_str(), static_cast<long long>(v));
  }
  std::printf("-- histograms (count / mean / p50 / p95 / p99 / p999) --\n");
  for (const auto& [name, h] : snap.histograms) {
    std::printf("  %-24s %llu  %.0f  %.0f  %.0f  %.0f  %.0f\n", name.c_str(),
                static_cast<unsigned long long>(h.count), h.Mean(),
                h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99),
                h.Quantile(0.999));
  }
  // Derived health ratios (guarded: the metric appears only after first use).
  const auto ctr = [&](const char* n) -> double {
    auto it = snap.counters.find(n);
    return it == snap.counters.end() ? 0 : static_cast<double>(it->second);
  };
  const auto gau = [&](const char* n) -> double {
    auto it = snap.gauges.find(n);
    return it == snap.gauges.end() ? 0 : static_cast<double>(it->second);
  };
  std::printf("-- derived --\n");
  if (ctr("bp.hits") + ctr("bp.misses") > 0) {
    std::printf("  %-24s %.4f\n", "bp hit ratio",
                ctr("bp.hits") / (ctr("bp.hits") + ctr("bp.misses")));
  }
  if (gau("csi.compressed_rows") > 0) {
    std::printf("  %-24s %.4f\n", "delete-bitmap density",
                gau("csi.deleted_rows") / gau("csi.compressed_rows"));
  }
  if (gau("csi.compressed_bytes") > 0) {
    std::printf("  %-24s %.2fx\n", "csi compression ratio",
                gau("csi.raw_bytes") / gau("csi.compressed_bytes"));
  }
}

/// `.queries [top|slow|fingerprints]`: dump the query store.
void PrintQueries(const std::string& arg) {
  if (g_query_store == nullptr) {
    std::printf("query store disabled (--query-store-capacity 0)\n");
    return;
  }
  if (arg.empty() || arg == "top") {
    std::printf("%s", g_query_store->RenderTop().c_str());
  } else if (arg == "slow") {
    std::printf("%s", g_query_store->RenderSlow().c_str());
  } else if (arg == "fingerprints" || arg == "fp") {
    std::printf("%s", g_query_store->RenderFingerprints().c_str());
  } else {
    std::printf("usage: .queries [top|slow|fingerprints]\n");
  }
}

void RunStatement(Database* db, const std::string& sql) {
  const uint64_t trace_id = ++g_next_trace;
  Timer wall;
  // Parse/plan failures still land in the query store (kind "invalid"):
  // NormalizeSql tokenizes even unparseable text, so mistyped statement
  // classes show up in the fingerprint table instead of vanishing.
  auto record_failure = [&](const Status& st) {
    if (g_query_store == nullptr) return;
    QueryRecord rec;
    rec.trace_id = trace_id;
    rec.sql = sql;
    rec.norm = NormalizeSql(sql);
    rec.fingerprint = FingerprintText(rec.norm);
    rec.kind = "invalid";
    rec.code = st.code();
    rec.error = st.message();
    rec.latency_ms = wall.ElapsedMs();
    g_query_store->Record(std::move(rec));
  };
  auto q = ParseSql(*db, sql);
  if (!q.ok()) {
    record_failure(q.status());
    std::printf("error: %s\n", q.status().ToString().c_str());
    return;
  }
  Optimizer opt(db);
  auto plan = opt.Plan(*q, Configuration::FromCatalog(*db), {});
  if (!plan.ok()) {
    record_failure(plan.status());
    std::printf("plan error: %s\n", plan.status().ToString().c_str());
    return;
  }
  if (q->explain == Query::ExplainMode::kPlan) {
    std::printf("%s", ExplainPlan(*q, plan->plan).c_str());
    return;
  }
  ExecContext ctx;
  ctx.db = db;
  ctx.max_dop = g_max_dop;
  ctx.scan_scheduler = g_scan_scheduler.get();
  ctx.admission = g_admission.get();
  if (g_query_store != nullptr) {
    ctx.query_store = g_query_store.get();
    ctx.capture.sql = sql;
    ctx.capture.norm = NormalizeSql(sql);
    ctx.capture.fingerprint = FingerprintText(ctx.capture.norm);
    ctx.capture.trace_id = trace_id;
  }
  Executor ex(ctx);
  Timer t;
  QueryResult r = ex.Execute(*q, plan->plan);
  if (!r.ok()) {
    std::printf("exec error: %s\n", r.status.ToString().c_str());
    return;
  }
  if (q->explain == Query::ExplainMode::kAnalyze) {
    std::printf("%s", ExplainAnalyze(*q, plan->plan, r).c_str());
    return;
  }
  for (size_t i = 0; i < r.rows.size() && i < 20; ++i) {
    std::string line;
    for (size_t c = 0; c < r.rows[i].size(); ++c) {
      if (c) line += " | ";
      line += r.rows[i][c].ToString();
    }
    std::printf("%s\n", line.c_str());
  }
  if (r.row_count > 20) {
    std::printf("... (%llu rows total)\n",
                static_cast<unsigned long long>(r.row_count));
  }
  if (q->kind != Query::Kind::kSelect) {
    std::printf("%llu rows affected\n",
                static_cast<unsigned long long>(r.affected_rows));
  }
  if (g_query_store != nullptr) {
    std::printf("-- %s | %.2f ms | trace %s\n", r.plan_desc.c_str(),
                t.ElapsedMs(), FingerprintHex(r.trace_id).c_str());
  } else {
    std::printf("-- %s | %.2f ms\n", r.plan_desc.c_str(), t.ElapsedMs());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string stats_path;
  std::string prom_path;
  std::string data_dir;
  QueryStoreOptions qs_opts;
  DurabilityMode durability = DurabilityMode::kOff;
  bool durability_set = false;
  int stats_interval_ms = 1000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--dop") == 0 && i + 1 < argc) {
      g_max_dop = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--stats-json") == 0 && i + 1 < argc) {
      stats_path = argv[++i];
    } else if (std::strcmp(argv[i], "--stats-interval") == 0 && i + 1 < argc) {
      stats_interval_ms = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--stats-prom") == 0 && i + 1 < argc) {
      prom_path = argv[++i];
    } else if (std::strcmp(argv[i], "--shared-scans") == 0) {
      g_scan_scheduler = std::make_unique<ScanScheduler>();
    } else if (std::strcmp(argv[i], "--admission") == 0 && i + 1 < argc) {
      AdmissionOptions ao;
      ao.max_concurrent = std::atoi(argv[++i]);
      g_admission = std::make_unique<AdmissionController>(ao);
    } else if (std::strcmp(argv[i], "--data-dir") == 0 && i + 1 < argc) {
      data_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--durability") == 0 && i + 1 < argc) {
      if (!ParseDurabilityMode(argv[++i], &durability)) {
        std::fprintf(stderr, "--durability must be off|commit|group\n");
        return 2;
      }
      durability_set = true;
    } else if (std::strcmp(argv[i], "--query-store-capacity") == 0 &&
               i + 1 < argc) {
      qs_opts.capacity = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--slow-query-ms") == 0 && i + 1 < argc) {
      qs_opts.slow_query_ms = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--qlog") == 0 && i + 1 < argc) {
      qs_opts.qlog_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trace out.json] [--dop n] "
                   "[--stats-json out.jsonl] [--stats-interval ms] "
                   "[--stats-prom out.prom] [--shared-scans] [--admission n] "
                   "[--data-dir path] [--durability off|commit|group] "
                   "[--query-store-capacity n] [--slow-query-ms ms] "
                   "[--qlog out.jsonl]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!data_dir.empty() && !durability_set) durability = DurabilityMode::kGroup;
  if (data_dir.empty() && durability_set &&
      durability != DurabilityMode::kOff) {
    std::fprintf(stderr, "--durability %s requires --data-dir\n",
                 DurabilityModeName(durability));
    return 2;
  }
  if (!trace_path.empty()) Trace::Global().Enable();
  if (qs_opts.capacity > 0) {
    g_query_store = std::make_unique<QueryStore>(qs_opts);
  }
  TelemetrySampler sampler;
  if (!stats_path.empty()) {
    Status s = sampler.Start(stats_path, stats_interval_ms);
    if (!s.ok()) {
      std::fprintf(stderr, "stats sampler failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  Database db;
  RecoveryStats rstats;
  if (durability != DurabilityMode::kOff) {
    if (Status s =
            db.OpenDurability(data_dir, durability, WalOptions(), &rstats);
        !s.ok()) {
      std::fprintf(stderr, "recovery failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (rstats.checkpoint_loaded) {
    std::printf("recovered %s: redo=%llu undo=%llu in %.1fms (durability=%s)\n\n",
                data_dir.c_str(),
                static_cast<unsigned long long>(rstats.redo_records),
                static_cast<unsigned long long>(rstats.undo_records),
                rstats.restart_ms, DurabilityModeName(durability));
  } else {
    // Demo schema, preloaded.
    auto sales = db.CreateTable(
        "sales", Schema({{"region", ValueType::kString, 8},
                         {"day", ValueType::kInt32, 0},
                         {"units", ValueType::kInt32, 0},
                         {"revenue", ValueType::kDouble, 0}}));
    // 400k rows: several columnstore row groups, so the clustered
    // (region, day) order gives min/max segment elimination something to
    // skip — visible in EXPLAIN ANALYZE.
    static const char* kRegions[] = {"east", "north", "south", "west"};
    std::vector<Row> rows;
    for (int i = 0; i < 400000; ++i) {
      rows.push_back({Value::String(kRegions[i % 4]), Value::Int32(i % 365),
                      Value::Int32(1 + i % 9), Value::Double(5.0 + i % 200)});
    }
    sales.value()->BulkLoad(rows);
    (void)sales.value()->SetPrimary(PrimaryKind::kBTree, {0, 1});
    (void)sales.value()->CreateSecondaryColumnStore("csi_sales");
    sales.value()->Analyze();
    // Bulk loads are not logged: the checkpoint is their durability point.
    if (durability != DurabilityMode::kOff) {
      if (Status s = db.Checkpoint(); !s.ok()) {
        std::fprintf(stderr, "initial checkpoint failed: %s\n",
                     s.ToString().c_str());
        return 1;
      }
    }
    std::printf("preloaded table 'sales'(region, day, units, revenue) with "
                "400000 rows\nhybrid design: clustered B+ tree(region, day) + "
                "secondary columnstore\n\n");
  }

  std::string line;
  bool any = false;
  std::printf("sql> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    any = true;
    if (line == "quit" || line == "exit") break;
    if (line == ".stats") {
      PrintStats(false);
    } else if (line == ".stats prom") {
      PrintStats(true);
    } else if (line.rfind(".queries", 0) == 0) {
      std::string arg = line.substr(std::strlen(".queries"));
      while (!arg.empty() && arg.front() == ' ') arg.erase(arg.begin());
      while (!arg.empty() && arg.back() == ' ') arg.pop_back();
      PrintQueries(arg);
    } else if (!line.empty()) {
      RunStatement(&db, line);
    }
    std::printf("sql> ");
    std::fflush(stdout);
  }
  if (!any) {
    // No stdin: run the scripted demo.
    std::printf("(no input; running demo script)\n");
    for (const char* s :
         {"SELECT count(*), sum(revenue) FROM sales",
          "SELECT region, sum(revenue) FROM sales GROUP BY region ORDER BY region",
          "SELECT day, units FROM sales WHERE region = 'east' AND day < 3 LIMIT 5",
          "UPDATE sales SET revenue = revenue + 1 WHERE day = 100",
          "SELECT count(*) FROM sales WHERE day BETWEEN 100 AND 101",
          "EXPLAIN SELECT sum(revenue) FROM sales WHERE region = 'east' AND day < 40",
          "EXPLAIN ANALYZE SELECT sum(revenue) FROM sales WHERE region = 'east' AND day < 40"}) {
      std::printf("sql> %s\n", s);
      RunStatement(&db, s);
    }
    std::printf("sql> .stats\n");
    PrintStats(false);
    std::printf("sql> .queries fingerprints\n");
    PrintQueries("fingerprints");
  }

  if (durability != DurabilityMode::kOff) {
    if (Status s = db.Checkpoint(); !s.ok()) {
      std::fprintf(stderr, "final checkpoint failed: %s\n",
                   s.ToString().c_str());
    }
  }

  if (!stats_path.empty()) {
    sampler.Stop();
    std::printf("wrote %llu telemetry samples to %s (hd-stats/1 JSONL)\n",
                static_cast<unsigned long long>(sampler.samples_written()),
                stats_path.c_str());
  }
  if (!prom_path.empty()) {
    FILE* f = std::fopen(prom_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", prom_path.c_str());
      return 1;
    }
    const std::string text = Telemetry::Instance().Snapshot().ToPrometheus();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::printf("wrote Prometheus snapshot to %s\n", prom_path.c_str());
  }
  if (!trace_path.empty()) {
    Status s = Trace::Global().WriteJson(trace_path);
    if (!s.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %llu trace events to %s (open in chrome://tracing)\n",
                static_cast<unsigned long long>(Trace::Global().event_count()),
                trace_path.c_str());
  }
  return 0;
}
