// A miniature SQL shell over the engine: reads statements from stdin (or
// runs a scripted demo when stdin is a terminal-less pipe with no input),
// plans them against the current physical design, executes, and prints
// results with plan and timing.
//
//   $ ./build/examples/sql_shell
//   sql> SELECT region, sum(revenue) FROM sales GROUP BY region
#include <cstdio>
#include <iostream>
#include <string>

#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "sql/parser.h"

using namespace hd;

namespace {

void RunStatement(Database* db, const std::string& sql) {
  auto q = ParseSql(*db, sql);
  if (!q.ok()) {
    std::printf("error: %s\n", q.status().ToString().c_str());
    return;
  }
  Optimizer opt(db);
  auto plan = opt.Plan(*q, Configuration::FromCatalog(*db), {});
  if (!plan.ok()) {
    std::printf("plan error: %s\n", plan.status().ToString().c_str());
    return;
  }
  ExecContext ctx;
  ctx.db = db;
  Executor ex(ctx);
  Timer t;
  QueryResult r = ex.Execute(*q, plan->plan);
  if (!r.ok()) {
    std::printf("exec error: %s\n", r.status.ToString().c_str());
    return;
  }
  for (size_t i = 0; i < r.rows.size() && i < 20; ++i) {
    std::string line;
    for (size_t c = 0; c < r.rows[i].size(); ++c) {
      if (c) line += " | ";
      line += r.rows[i][c].ToString();
    }
    std::printf("%s\n", line.c_str());
  }
  if (r.row_count > 20) {
    std::printf("... (%llu rows total)\n",
                static_cast<unsigned long long>(r.row_count));
  }
  if (q->kind != Query::Kind::kSelect) {
    std::printf("%llu rows affected\n",
                static_cast<unsigned long long>(r.affected_rows));
  }
  std::printf("-- %s | %.2f ms\n", r.plan_desc.c_str(), t.ElapsedMs());
}

}  // namespace

int main() {
  Database db;
  // Demo schema, preloaded.
  auto sales = db.CreateTable(
      "sales", Schema({{"region", ValueType::kString, 8},
                       {"day", ValueType::kInt32, 0},
                       {"units", ValueType::kInt32, 0},
                       {"revenue", ValueType::kDouble, 0}}));
  static const char* kRegions[] = {"east", "north", "south", "west"};
  std::vector<Row> rows;
  for (int i = 0; i < 100000; ++i) {
    rows.push_back({Value::String(kRegions[i % 4]), Value::Int32(i % 365),
                    Value::Int32(1 + i % 9), Value::Double(5.0 + i % 200)});
  }
  sales.value()->BulkLoad(rows);
  (void)sales.value()->SetPrimary(PrimaryKind::kBTree, {0, 1});
  (void)sales.value()->CreateSecondaryColumnStore("csi_sales");
  sales.value()->Analyze();
  std::printf("preloaded table 'sales'(region, day, units, revenue) with "
              "100000 rows\nhybrid design: clustered B+ tree(region, day) + "
              "secondary columnstore\n\n");

  std::string line;
  bool any = false;
  std::printf("sql> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    any = true;
    if (line == "quit" || line == "exit") break;
    if (!line.empty()) RunStatement(&db, line);
    std::printf("sql> ");
    std::fflush(stdout);
  }
  if (!any) {
    // No stdin: run the scripted demo.
    std::printf("(no input; running demo script)\n");
    for (const char* s :
         {"SELECT count(*), sum(revenue) FROM sales",
          "SELECT region, sum(revenue) FROM sales GROUP BY region ORDER BY region",
          "SELECT day, units FROM sales WHERE region = 'east' AND day < 3 LIMIT 5",
          "UPDATE sales SET revenue = revenue + 1 WHERE day = 100",
          "SELECT count(*) FROM sales WHERE day BETWEEN 100 AND 101"}) {
      std::printf("sql> %s\n", s);
      RunStatement(&db, s);
    }
  }
  return 0;
}
