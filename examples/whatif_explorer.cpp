// What-if exploration: cost a query under hypothetical physical designs
// without building anything (Section 4.2's API, exposed directly).
//
//   $ ./build/examples/whatif_explorer
#include <cstdio>

#include "core/size_estimation.h"
#include "optimizer/optimizer.h"
#include "workload/tpch.h"

using namespace hd;

int main() {
  using L = LineitemCols;
  Database db;
  TpchOptions to;
  to.rows = 300000;
  Table* li = MakeLineitem(&db, "lineitem", to);
  if (li == nullptr) return 1;

  // The statement to explore: one month of revenue.
  Query q = TpchQ5Range("lineitem", kTpchShipDateLo + 400, 30);

  Optimizer opt(&db);
  PlanOptions po;
  po.max_dop = 1;

  auto explain = [&](const char* label, const Configuration& cfg) {
    auto plan = opt.Plan(q, cfg, po);
    if (!plan.ok()) return;
    std::printf("%-34s est %8.3f ms   %s\n", label, plan->cost_ms,
                plan->plan.Describe().c_str());
  };

  // Current design: a bare heap.
  Configuration base = Configuration::FromCatalog(db);
  explain("heap only", base);

  // Hypothetical clustered B+ tree on (orderkey, linenumber).
  Configuration c1 = base;
  {
    TableConfig* tc = c1.FindMutable("lineitem");
    tc->primary = PrimaryKind::kBTree;
    tc->primary_keys = {L::kOrderKey, L::kLineNumber};
  }
  explain("+ clustered B+ tree", c1);

  // Hypothetical secondary B+ tree on shipdate, covering the measures.
  Configuration c2 = c1;
  {
    ConfigIndex ix;
    ix.def.type = IndexDef::Type::kBTree;
    ix.def.name = "hyp_ix_ship";
    ix.def.key_cols = {L::kShipDate};
    ix.def.included_cols = {L::kQuantity, L::kExtendedPrice, L::kDiscount};
    ix.stats = EstimateBTreeStats(*li, ix.def);
    ix.hypothetical = true;
    c2.FindMutable("lineitem")->secondaries.push_back(ix);
    std::printf("  (hypothetical B+ tree estimated at %.1f MB)\n",
                ix.stats.size_bytes / 1048576.0);
  }
  explain("+ covering shipdate B+ tree", c2);

  // Hypothetical secondary columnstore, sized by the GEE estimator —
  // nothing is ever built, exactly like DTA's what-if mode.
  Configuration c3 = c1;
  {
    ConfigIndex ix;
    ix.def.type = IndexDef::Type::kColumnStore;
    ix.def.name = "hyp_csi";
    SizeEstimateOptions so;
    ix.stats = EstimateCsiSizeGee(*li, so);
    ix.hypothetical = true;
    std::printf("  (hypothetical columnstore estimated at %.1f MB; "
                "per-column sizes feed the cost model)\n",
                ix.stats.size_bytes / 1048576.0);
    c3.FindMutable("lineitem")->secondaries.push_back(ix);
  }
  explain("+ secondary columnstore", c3);

  // Both (the hybrid configuration).
  Configuration c4 = c2;
  c4.FindMutable("lineitem")->secondaries.push_back(
      c3.Find("lineitem")->secondaries.back());
  explain("+ both (hybrid)", c4);

  std::printf("\nNo index was materialized: the table still has %zu "
              "secondary indexes.\n",
              li->secondaries().size());
  return 0;
}
