// Interactive remote SQL client for hd_server, speaking hd-proto/1
// (docs/PROTOCOL.md). The network twin of sql_shell:
//
//   terminal 1:  ./build/src/server/hd_server --port 5433
//   terminal 2:  ./build/examples/sql_client --port 5433
//   sql> SELECT region, sum(revenue) FROM sales GROUP BY region
//   sql> EXPLAIN ANALYZE SELECT count(*) FROM sales WHERE day < 40
//   sql> BEGIN
//   sql> UPDATE sales SET revenue = revenue + 1 WHERE day = 100
//   sql> COMMIT
//
// Meta-commands:
//   .stats        server telemetry registry (JSON lines)
//   .stats prom   same, Prometheus text format
//   .queries [top|slow|fingerprints]   server-side query store (handled
//                 by the session like any statement, §2.3)
//   quit / exit   orderly Close/CloseOk goodbye
//
// Every statement's footer prints the end-to-end trace id the server
// confirmed (`-- ... | trace <16 hex>`): grep the same id in the
// server's --qlog JSONL, slow-query log, and --trace chrome://tracing
// export to follow one statement across client, wire, and morsels.
//
// Flags:
//   --host <ip>   server address (default 127.0.0.1)
//   --port <n>    server port (default 5433)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "server/client.h"

using namespace hd;

namespace {

void PrintResult(const RemoteResult& r) {
  if (!r.columns.empty()) {
    std::string hdr;
    for (size_t c = 0; c < r.columns.size(); ++c) {
      if (c) hdr += " | ";
      hdr += r.columns[c];
    }
    std::printf("%s\n", hdr.c_str());
  }
  for (size_t i = 0; i < r.rows.size() && i < 20; ++i) {
    std::string line;
    for (size_t c = 0; c < r.rows[i].size(); ++c) {
      if (c) line += " | ";
      line += r.rows[i][c].ToString();
    }
    std::printf("%s\n", line.c_str());
  }
  if (r.row_count > 20) {
    std::printf("... (%llu rows total)\n",
                static_cast<unsigned long long>(r.row_count));
  }
  if (r.affected_rows > 0) {
    std::printf("%llu rows affected\n",
                static_cast<unsigned long long>(r.affected_rows));
  }
  if (!r.info.empty()) std::printf("%s\n", r.info.c_str());
  if (r.trace_id != 0) {
    std::printf("-- %.2f ms server-side | trace %016llx\n", r.exec_ms,
                static_cast<unsigned long long>(r.trace_id));
  } else {
    std::printf("-- %.2f ms server-side\n", r.exec_ms);
  }
}

void RunLine(Client* client, const std::string& line) {
  if (line == ".stats" || line == ".stats json") {
    auto s = client->Stats(StatsReqMsg::Format::kJson);
    std::printf("%s\n", s.ok() ? s->c_str() : s.status().ToString().c_str());
    return;
  }
  if (line == ".stats prom") {
    auto s = client->Stats(StatsReqMsg::Format::kPrometheus);
    std::printf("%s", s.ok() ? s->c_str() : s.status().ToString().c_str());
    return;
  }
  auto r = client->Query(line);
  if (!r.ok()) {
    std::printf("error: %s\n", r.status().ToString().c_str());
    return;
  }
  PrintResult(*r);
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 5433;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--host") == 0 && i + 1 < argc) {
      host = argv[++i];
    } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--host ip] [--port n]\n", argv[0]);
      return 2;
    }
  }

  Client client;
  if (Status s = client.Connect(host, port, "sql_client"); !s.ok()) {
    std::fprintf(stderr, "connect %s:%d failed: %s\n", host.c_str(), port,
                 s.ToString().c_str());
    return 1;
  }
  std::printf("connected to %s:%d (%s), session %llu\n", host.c_str(), port,
              kProtocolVersion,
              static_cast<unsigned long long>(client.session_id()));

  std::string line;
  bool any = false;
  std::printf("sql> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    any = true;
    if (line == "quit" || line == "exit") break;
    if (!line.empty()) RunLine(&client, line);
    std::printf("sql> ");
    std::fflush(stdout);
  }
  if (!any) {
    // No stdin: scripted demo against the server's preloaded table.
    std::printf("(no input; running demo script)\n");
    for (const char* s :
         {"SELECT count(*), sum(revenue) FROM sales",
          "SELECT region, sum(revenue) FROM sales GROUP BY region ORDER BY region",
          "EXPLAIN ANALYZE SELECT sum(revenue) FROM sales WHERE region = 'east' AND day < 40",
          ".queries fingerprints"}) {
      std::printf("sql> %s\n", s);
      RunLine(&client, s);
    }
  }

  if (Status s = client.Close(); !s.ok()) {
    std::fprintf(stderr, "close failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("bye\n");
  return 0;
}
