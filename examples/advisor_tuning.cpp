// Physical design tuning with the advisor — the paper's core scenario.
//
// Loads a TPC-DS-like decision-support database, asks the advisor for a
// B+ tree-only, a columnstore-only, and a hybrid design, materializes each
// and measures the workload, reproducing the Section 5 comparison in
// miniature.
//
//   $ ./build/examples/advisor_tuning
//
// With --workload-from-capture <qlog>, the hand-written driver workload
// is replaced by statement classes reconstructed from an hd-qlog/1
// query-store capture (hd_server --qlog / sql_shell --qlog): one
// representative per fingerprint, weighted by observed call count. This
// closes the capture loop — the advisor tunes for what actually ran.
#include <cstdio>
#include <cstring>
#include <string>

#include "core/advisor.h"
#include "exec/executor.h"
#include "obs/capture_ingest.h"
#include "workload/tpcds.h"

using namespace hd;

namespace {

double RunWorkload(Database* db, const std::vector<Query>& queries) {
  Optimizer opt(db);
  Configuration cfg = Configuration::FromCatalog(*db);
  double total_cpu = 0;
  PlanOptions po;
  po.max_dop = 1;
  for (const auto& q : queries) {
    auto plan = opt.Plan(q, cfg, po);
    if (!plan.ok()) continue;
    ExecContext ctx;
    ctx.db = db;
    ctx.max_dop = 1;
    Executor ex(ctx);
    QueryResult r = ex.Execute(q, plan->plan);
    if (r.ok()) total_cpu += r.metrics.cpu_ms();
  }
  return total_cpu;
}

}  // namespace

int main(int argc, char** argv) {
  std::string capture_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--workload-from-capture") == 0 && i + 1 < argc) {
      capture_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--workload-from-capture qlog.jsonl]\n",
                   argv[0]);
      return 2;
    }
  }

  Database db;
  TpcdsOptions opts;
  opts.fact_rows = 150000;
  opts.num_queries = 30;
  std::printf("loading TPC-DS-like schema (%llu fact rows)...\n",
              static_cast<unsigned long long>(opts.fact_rows));
  GeneratedWorkload w = MakeTpcds(&db, opts);

  std::vector<Query> queries = std::move(w.queries);
  if (!capture_path.empty()) {
    size_t skipped = 0;
    auto captured = WorkloadFromCapture(db, capture_path, &skipped);
    if (!captured.ok()) {
      std::fprintf(stderr, "capture load failed: %s\n",
                   captured.status().ToString().c_str());
      return 1;
    }
    queries = std::move(*captured);
    std::printf("tuning for %zu captured statement classes from %s "
                "(%zu skipped)\n",
                queries.size(), capture_path.c_str(), skipped);
    if (queries.empty()) {
      std::fprintf(stderr, "capture holds no usable statements\n");
      return 1;
    }
  }

  for (AdvisorMode mode : {AdvisorMode::kBTreeOnly, AdvisorMode::kCsiOnly,
                           AdvisorMode::kHybrid}) {
    AdvisorOptions ao;
    ao.mode = mode;
    Advisor advisor(&db, ao);
    auto rec = advisor.Recommend(queries);
    if (!rec.ok()) {
      std::fprintf(stderr, "advisor error: %s\n",
                   rec.status().ToString().c_str());
      return 1;
    }
    std::printf("\n==== %s ====\n%s", AdvisorModeName(mode),
                rec->Report().c_str());
    if (!MaterializeConfiguration(&db, rec->config).ok()) return 1;
    const double cpu = RunWorkload(&db, queries);
    std::printf("measured workload CPU under this design: %.1f ms\n", cpu);
  }

  std::printf("\nThe hybrid design combines selective B+ tree access paths "
              "with columnstore scans,\nmatching the paper's conclusion that "
              "neither single-format design is sufficient.\n");
  return 0;
}
