// Operational analytics: OLTP updates and analytic scans on the same
// table, concurrently, under Read Committed — the Section 3.4 scenario.
// Compares a B+ tree-only design with the hybrid design (B+ tree +
// secondary columnstore).
//
//   $ ./build/examples/operational_analytics
#include <cstdio>

#include "workload/mixed_driver.h"
#include "workload/tpch.h"

using namespace hd;

namespace {

void Report(const char* design, const MixedResult& r) {
  std::printf("\n-- %s --\n", design);
  for (const auto& [type, st] : r.per_type) {
    std::printf("  %-8s n=%-5llu median=%8.3f ms  p95=%8.3f ms\n",
                type.c_str(), static_cast<unsigned long long>(st.count),
                st.median_ms(), st.p95_ms());
  }
  std::printf("  wall: %.0f ms, aborts: %llu\n", r.wall_ms,
              static_cast<unsigned long long>(r.total_aborts));
}

MixedResult RunMix(Database* db, const std::string& table) {
  TransactionManager txns;
  MixedOptions mo;
  mo.threads = 6;
  mo.total_ops = 400;
  mo.isolation = IsolationLevel::kReadCommitted;
  OpGenerator gen = [table](int, Rng* rng) {
    const int32_t d = static_cast<int32_t>(
        rng->Uniform(kTpchShipDateLo, kTpchShipDateHi - 40));
    if (rng->Flip(0.05)) {
      Query q = TpchQ5Range(table, d, 30);  // analytic window scan
      q.id = "scan";
      return q;
    }
    Query q = TpchQ4(table, 10, d);  // short update transaction
    q.id = "update";
    return q;
  };
  return RunMixedWorkload(db, &txns, gen, mo);
}

}  // namespace

int main() {
  using L = LineitemCols;
  Database db;
  TpchOptions to;
  to.rows = 400000;
  std::printf("loading lineitem (%llu rows)...\n",
              static_cast<unsigned long long>(to.rows));

  // Design A: classic OLTP B+ trees only.
  Table* a = MakeLineitem(&db, "li_btree", to);
  if (a == nullptr) return 1;
  (void)a->SetPrimary(PrimaryKind::kBTree, {L::kOrderKey, L::kLineNumber});
  (void)a->CreateSecondaryBTree("ix_ship", {L::kShipDate}, {});
  a->Analyze();

  // Design B: the hybrid — same B+ trees plus a secondary columnstore.
  Table* b = MakeLineitem(&db, "li_hybrid", to);
  if (b == nullptr) return 1;
  (void)b->SetPrimary(PrimaryKind::kBTree, {L::kOrderKey, L::kLineNumber});
  (void)b->CreateSecondaryBTree("ix_ship", {L::kShipDate}, {});
  (void)b->CreateSecondaryColumnStore("csi");
  b->Analyze();

  Report("B+ tree-only", RunMix(&db, "li_btree"));
  Report("hybrid (B+ tree + secondary columnstore)", RunMix(&db, "li_hybrid"));

  std::printf("\nThe hybrid design serves the analytic scans from the "
              "columnstore while updates\nstay on the B+ trees — the paper's "
              "operational-analytics sweet spot (Fig. 6).\n");
  return 0;
}
