// Quickstart: create a database, load data, build indexes, run queries.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "catalog/database.h"
#include "exec/executor.h"
#include "optimizer/optimizer.h"

using namespace hd;

namespace {

// Optimize and execute one query against the current physical design.
QueryResult RunOne(Database* db, const Query& q) {
  Optimizer optimizer(db);
  Configuration current = Configuration::FromCatalog(*db);
  auto plan = optimizer.Plan(q, current);
  if (!plan.ok()) {
    std::fprintf(stderr, "plan error: %s\n", plan.status().ToString().c_str());
    std::exit(1);
  }
  ExecContext ctx;
  ctx.db = db;
  Executor executor(ctx);
  QueryResult r = executor.Execute(q, plan->plan);
  if (!r.ok()) {
    std::fprintf(stderr, "exec error: %s\n", r.status.ToString().c_str());
    std::exit(1);
  }
  std::printf("  plan: %s\n", r.plan_desc.c_str());
  std::printf("  cpu: %.3f ms, rows scanned: %llu\n", r.metrics.cpu_ms(),
              static_cast<unsigned long long>(r.metrics.rows_scanned.load()));
  return r;
}

}  // namespace

int main() {
  Database db;

  // 1. Create a table and bulk load some rows.
  auto created = db.CreateTable(
      "sales", Schema({{"region", ValueType::kString, 8},
                       {"day", ValueType::kDate, 0},
                       {"units", ValueType::kInt32, 0},
                       {"revenue", ValueType::kDouble, 0}}));
  if (!created.ok()) return 1;
  Table* sales = created.value();
  static const char* kRegions[] = {"east", "north", "south", "west"};
  std::vector<Row> rows;
  for (int i = 0; i < 200000; ++i) {
    rows.push_back({Value::String(kRegions[i % 4]),
                    Value::Date(18000 + i % 365),
                    Value::Int32(1 + i % 7),
                    Value::Double(9.99 + (i % 100))});
  }
  sales->BulkLoad(rows);
  std::printf("loaded %llu rows into %s\n",
              static_cast<unsigned long long>(sales->num_rows()),
              sales->schema().ToString().c_str());

  // 2. A selective lookup: one day of one region.
  Query lookup;
  lookup.id = "lookup";
  lookup.base.table = "sales";
  lookup.base.preds = {Pred::Eq(0, Value::String("west")),
                       Pred::Eq(1, Value::Date(18100))};
  lookup.aggs = {AggSpec::Sum(Expr::Col(0, 3), "revenue"),
                 AggSpec::CountStar()};

  // 3. An analytic rollup: total revenue by region.
  Query rollup;
  rollup.id = "rollup";
  rollup.base.table = "sales";
  rollup.group_by = {ColRef{0, 0}};
  rollup.aggs = {AggSpec::Sum(Expr::Col(0, 3), "revenue")};
  rollup.order_by = {ColRef{0, 0}};

  std::printf("\n-- heap only --\n");
  RunOne(&db, lookup);
  RunOne(&db, rollup);

  // 4. Build a hybrid physical design: clustered B+ tree for the lookups,
  //    a secondary columnstore for the rollups.
  if (!sales->SetPrimary(PrimaryKind::kBTree, {0, 1}).ok()) return 1;
  if (!sales->CreateSecondaryColumnStore("csi_sales").ok()) return 1;
  sales->Analyze();

  std::printf("\n-- hybrid design (clustered B+ tree + columnstore) --\n");
  QueryResult r1 = RunOne(&db, lookup);
  QueryResult r2 = RunOne(&db, rollup);
  std::printf("\nlookup answer:  revenue=%s count=%s\n",
              r1.rows[0][0].ToString().c_str(), r1.rows[0][1].ToString().c_str());
  for (const auto& row : r2.rows) {
    std::printf("rollup: region=%-6s revenue=%s\n", row[0].str().c_str(),
                row[1].ToString().c_str());
  }

  // 5. Updates keep every index in sync.
  Query upd;
  upd.kind = Query::Kind::kUpdate;
  upd.id = "update";
  upd.base.table = "sales";
  upd.base.preds = {Pred::Eq(1, Value::Date(18100))};
  upd.sets = {UpdateSet::Add(3, 1.0)};
  QueryResult ru = RunOne(&db, upd);
  std::printf("\nupdated %llu rows (B+ tree in place, columnstore via "
              "delete buffer + delta store)\n",
              static_cast<unsigned long long>(ru.affected_rows));
  return 0;
}
