// Figure 5: update cost by index type and update size (Q4: UPDATE TOP(N)
// WHERE l_shipdate = d on TPC-H lineitem). Three designs:
//   (A) primary B+ tree (orderkey, linenumber) + secondary B+ tree shipdate
//   (B) design A + secondary columnstore (delete buffer path)
//   (C) primary columnstore + secondary B+ tree shipdate (delete bitmap)
#include "bench/bench_util.h"
#include "workload/tpch.h"

using namespace hd;
using namespace hd::bench;

namespace {

Table* BuildLineitem(Database* db, const std::string& name, uint64_t rows,
                     bool primary_csi, bool secondary_csi) {
  TpchOptions to;
  to.rows = rows;
  Table* t = MakeLineitem(db, name, to);
  if (t == nullptr) return nullptr;
  using L = LineitemCols;
  if (primary_csi) {
    if (!t->SetPrimary(PrimaryKind::kColumnStore).ok()) return nullptr;
  } else {
    if (!t->SetPrimary(PrimaryKind::kBTree, {L::kOrderKey, L::kLineNumber})
             .ok()) {
      return nullptr;
    }
  }
  if (!t->CreateSecondaryBTree("ix_ship", {L::kShipDate}, {}).ok()) {
    return nullptr;
  }
  if (secondary_csi) {
    if (!t->CreateSecondaryColumnStore("csi").ok()) return nullptr;
  }
  t->Analyze();
  return t;
}

// Run one update of `frac` of the rows (hot) and report execution time.
// Rebuilds are avoided by updating different dates; rows updated by a
// statement stay in the table with the same shipdate.
double UpdateCost(Database* db, const std::string& table, uint64_t rows,
                  double frac, int* date_cursor) {
  // Q4 updates TOP(N) rows of one shipdate. Fractions larger than one
  // date's population widen the predicate to a date range, as an update
  // statement over more data.
  const int64_t n = std::max<int64_t>(1, static_cast<int64_t>(rows * frac));
  const double rows_per_day =
      static_cast<double>(rows) / (kTpchShipDateHi - kTpchShipDateLo);
  const int days = std::max(1, static_cast<int>(n / rows_per_day + 1));
  const int32_t d = kTpchShipDateLo + (*date_cursor);
  *date_cursor += days + 1;

  auto run_once = [&](int32_t day, int span) {
    Query q = TpchQ4(table, n, day);
    if (span > 1) {
      q.base.preds.clear();
      q.base.preds.push_back(Pred::Between(LineitemCols::kShipDate,
                                           Value::Date(day),
                                           Value::Date(day + span)));
    }
    return RunQuery(db, q).metrics.exec_ms();
  };
  // Small statements are sub-millisecond: median of several runs on
  // different dates (each date's rows are updated once per run).
  const int reps = frac <= 1e-3 ? 5 : 1;
  std::vector<double> runs;
  run_once(d, days);  // warm up structures and caches
  for (int r2 = 0; r2 < reps; ++r2) {
    const int32_t day = kTpchShipDateLo + (*date_cursor);
    *date_cursor += days + 1;
    runs.push_back(run_once(day, days));
  }
  std::sort(runs.begin(), runs.end());
  return runs[runs.size() / 2];
}

}  // namespace

int main() {
  const uint64_t rows = static_cast<uint64_t>(2'000'000 * Scale());
  Database db;
  Table* a = BuildLineitem(&db, "li_btree", rows, false, false);
  Table* b = BuildLineitem(&db, "li_seccsi", rows, false, true);
  Table* c = BuildLineitem(&db, "li_pricsi", rows, true, false);
  if (a == nullptr || b == nullptr || c == nullptr) return 1;

  const std::vector<double> fracs = {1e-5, 1e-4, 1e-3, 0.01, 0.1, 0.4};
  Series sa{"Pri.B+tree", {}}, sb{"B+t+sec.CSI", {}}, sc{"Pri.CSI", {}};
  int cur_a = 0, cur_b = 0, cur_c = 0;
  for (double f : fracs) {
    sa.ys.push_back(UpdateCost(&db, "li_btree", rows, f, &cur_a));
    sb.ys.push_back(UpdateCost(&db, "li_seccsi", rows, f, &cur_b));
    sc.ys.push_back(UpdateCost(&db, "li_pricsi", rows, f, &cur_c));
  }

  std::printf("Figure 5 reproduction: lineitem %llu rows, hot updates\n",
              static_cast<unsigned long long>(rows));
  std::vector<double> xs;
  for (double f : fracs) xs.push_back(f * 100);
  PrintTable("Fig 5 update execution time (ms)", "%updated", xs, {sa, sb, sc});

  // At the smallest size (N=20) the identical row-find phase dominates
  // and run noise exceeds the maintenance delta; assert strictly from
  // N=200 up and with tolerance at N=20.
  bool btree_cheapest = sa.ys[0] < sb.ys[0] * 1.3 && sa.ys[0] < sc.ys[0];
  for (size_t i = 1; i < sa.ys.size(); ++i) {
    btree_cheapest &= sa.ys[i] < sb.ys[i] && sa.ys[i] < sc.ys[i];
  }
  Shape(btree_cheapest, "B+ tree is the cheapest to update at every size");
  Shape(sc.ys[0] > sb.ys[0] * 3,
        "primary CSI much slower than secondary CSI for small updates "
        "(delete bitmap needs a locator scan), measured " +
            std::to_string(sc.ys[0] / sb.ys[0]) + "x");
  Shape(sb.ys[0] < sa.ys[0] * 8,
        "secondary CSI within a small factor of B+ tree for small updates "
        "(paper ~2x), measured " + std::to_string(sb.ys[0] / sa.ys[0]) + "x");
  const size_t last = fracs.size() - 1;
  Shape(sb.ys[last] > sa.ys[last] * 2 && sc.ys[last] > sa.ys[last] * 2,
        "both columnstores much slower than B+ tree at 40% updated "
        "(paper ~16x), measured sec=" +
            std::to_string(sb.ys[last] / sa.ys[last]) + "x pri=" +
            std::to_string(sc.ys[last] / sa.ys[last]) + "x");
  const size_t p1 = 3;  // 1%
  Shape(sb.ys[p1] > sc.ys[p1] * 0.3 && sb.ys[p1] < sc.ys[p1] * 3,
        "secondary CSI converges to primary CSI at >=1% updated");
  return 0;
}
