// Figures 9 and 10: end-to-end evaluation of the advisor on TPC-DS-like
// and five customer-like workloads.
//
// For each workload, three physical designs are produced exactly as in
// Section 5.1: (a) B+ tree-only (DTA restricted to B+ trees),
// (b) columnstore-only (secondary CSI on every referenced table), and
// (c) hybrid (DTA over the combined space). All queries execute hot under
// each design; Fig. 9 reports the distribution of per-query CPU-time
// speedups of hybrid over the other two, in the paper's buckets.
// Fig. 10 reports plan-leaf composition under the hybrid design.
#include <map>

#include "bench/bench_util.h"
#include "core/advisor.h"
#include "workload/customer.h"
#include "workload/tpcds.h"

using namespace hd;
using namespace hd::bench;

namespace {

const std::vector<double> kBuckets = {0.5, 0.8, 1.2, 1.5, 2, 5, 10};

std::vector<int> Histogram(const std::vector<double>& speedups) {
  std::vector<int> h(kBuckets.size() + 1, 0);
  for (double s : speedups) {
    size_t b = 0;
    while (b < kBuckets.size() && s > kBuckets[b]) ++b;
    h[b]++;
  }
  return h;
}

void PrintHistogram(const std::string& label, const std::vector<int>& h) {
  std::printf("%-14s", label.c_str());
  for (int v : h) std::printf("%8d", v);
  std::printf("\n");
}

struct DesignRun {
  std::vector<double> cpu_ms;  // per query
  double total = 0;
};

DesignRun RunUnder(Database* db, const std::vector<Query>& queries,
                   const Configuration& cfg) {
  Status st = MaterializeConfiguration(db, cfg);
  if (!st.ok()) {
    std::fprintf(stderr, "materialize failed: %s\n", st.ToString().c_str());
    std::abort();
  }
  DesignRun out;
  for (const auto& q : queries) {
    // Plan and execute at DOP 1: the comparison metric is CPU time
    // (logical work), so plan choice must optimize the same quantity —
    // mirroring the paper's resource-governed, CPU-time-based evaluation.
    QueryResult r = RunQuery(db, q, 8ull << 30, 1);
    out.cpu_ms.push_back(std::max(1e-4, r.metrics.cpu_ms()));
    out.total += out.cpu_ms.back();
  }
  return out;
}

struct Fig10Stats {
  double csi_leaf_pct = 0;
  double btree_leaf_pct = 0;
  int hybrid_plans = 0;
};

Fig10Stats AnalyzePlans(Database* db, const std::vector<Query>& queries,
                        const Configuration& cfg) {
  Optimizer opt(db);
  Fig10Stats s;
  double csi = 0, bt = 0, heap = 0;
  for (const auto& q : queries) {
    PlanOptions po;
    po.max_dop = 1;
    auto plan = opt.Plan(q, cfg, po);
    if (!plan.ok()) continue;
    const int c = plan->plan.leaf_csi_count();
    const int b = plan->plan.leaf_btree_count();
    const int h = plan->plan.leaf_heap_count();
    const int total = std::max(1, c + b + h);
    csi += 100.0 * c / total;
    bt += 100.0 * b / total;
    heap += 100.0 * h / total;
    if (plan->plan.is_hybrid()) ++s.hybrid_plans;
  }
  s.csi_leaf_pct = csi / queries.size();
  s.btree_leaf_pct = bt / queries.size();
  return s;
}

struct WorkloadReport {
  std::string name;
  std::vector<int> hist_vs_csi;
  std::vector<int> hist_vs_bt;
  double total_bt = 0, total_csi = 0, total_hybrid = 0;
  Fig10Stats fig10;
  int n_queries = 0;
  int over10_csi = 0, over10_bt = 0;
  int over5_csi = 0, over5_bt = 0;
  int over2_csi = 0, over2_bt = 0;
};

WorkloadReport Evaluate(const std::string& name, Database* db,
                        const GeneratedWorkload& w) {
  WorkloadReport rep;
  rep.name = name;
  rep.n_queries = static_cast<int>(w.queries.size());

  auto recommend = [&](AdvisorMode mode) {
    AdvisorOptions ao;
    ao.mode = mode;
    Advisor advisor(db, ao);
    auto rec = advisor.Recommend(w.queries);
    if (!rec.ok()) {
      std::fprintf(stderr, "advisor failed: %s\n",
                   rec.status().ToString().c_str());
      std::abort();
    }
    return rec->config;
  };

  Timer t;
  Configuration cfg_bt = recommend(AdvisorMode::kBTreeOnly);
  Configuration cfg_csi = recommend(AdvisorMode::kCsiOnly);
  Configuration cfg_hybrid = recommend(AdvisorMode::kHybrid);
  std::printf("[%s] advisor time %.1fs\n", name.c_str(), t.ElapsedMs() / 1000);

  DesignRun bt = RunUnder(db, w.queries, cfg_bt);
  DesignRun csi = RunUnder(db, w.queries, cfg_csi);
  DesignRun hy = RunUnder(db, w.queries, cfg_hybrid);
  rep.fig10 = AnalyzePlans(db, w.queries, Configuration::FromCatalog(*db));

  std::vector<double> sp_csi, sp_bt;
  for (size_t i = 0; i < w.queries.size(); ++i) {
    sp_csi.push_back(csi.cpu_ms[i] / hy.cpu_ms[i]);
    sp_bt.push_back(bt.cpu_ms[i] / hy.cpu_ms[i]);
    rep.over10_csi += sp_csi.back() > 10;
    rep.over10_bt += sp_bt.back() > 10;
    rep.over5_csi += sp_csi.back() > 5;
    rep.over5_bt += sp_bt.back() > 5;
    rep.over2_csi += sp_csi.back() > 2;
    rep.over2_bt += sp_bt.back() > 2;
  }
  rep.hist_vs_csi = Histogram(sp_csi);
  rep.hist_vs_bt = Histogram(sp_bt);
  rep.total_bt = bt.total;
  rep.total_csi = csi.total;
  rep.total_hybrid = hy.total;
  return rep;
}

}  // namespace

int main() {
  const double scale = Scale();
  std::vector<WorkloadReport> reports;

  {
    Database db;
    TpcdsOptions to;
    to.fact_rows = static_cast<uint64_t>(400'000 * scale);
    GeneratedWorkload w = MakeTpcds(&db, to);
    reports.push_back(Evaluate("TPC-DS", &db, w));
  }
  for (int c = 1; c <= 5; ++c) {
    Database db;
    GeneratedWorkload w = MakeCustomer(&db, CustProfile(c), scale);
    reports.push_back(Evaluate(CustProfile(c).name, &db, w));
  }

  std::printf("\n== Fig 9: speedup distributions (CPU time), buckets "
              "0.5/0.8/1.2/1.5/2/5/10/>10 ==\n");
  for (const auto& r : reports) {
    std::printf("\n[%s] (%d queries)  totals: B+tree=%.0fms CSI=%.0fms "
                "hybrid=%.0fms\n",
                r.name.c_str(), r.n_queries, r.total_bt, r.total_csi,
                r.total_hybrid);
    PrintHistogram("vs CSI", r.hist_vs_csi);
    PrintHistogram("vs B+tree", r.hist_vs_bt);
  }

  std::printf("\n== Fig 10: plan composition under the hybrid design ==\n");
  std::printf("%-10s%14s%14s%14s\n", "workload", "CSI leaf %", "B+tree leaf %",
              "hybrid plans");
  for (const auto& r : reports) {
    std::printf("%-10s%14.1f%14.1f%14d\n", r.name.c_str(), r.fig10.csi_leaf_pct,
                r.fig10.btree_leaf_pct, r.fig10.hybrid_plans);
  }

  // ---- Shape checks against the Section 5 takeaways ----
  for (const auto& r : reports) {
    Shape(r.total_hybrid <= r.total_bt * 1.05 &&
              r.total_hybrid <= r.total_csi * 1.05,
          r.name + ": hybrid total cost <= both single-format designs");
  }
  // Magnitudes scale with data size (the paper's facts are ~3 orders of
  // magnitude larger); the checks assert "many queries improve by a large
  // factor", with the paper's >10x counts quoted for reference.
  const WorkloadReport& ds = reports[0];
  Shape(ds.over2_csi >= 10 && ds.over5_csi >= 3,
        "TPC-DS: many queries improve substantially over columnstore-only "
        "(paper: 11 over 10x at 88GB scale), measured >2x: " +
            std::to_string(ds.over2_csi) + ", >5x: " +
            std::to_string(ds.over5_csi) + ", >10x: " +
            std::to_string(ds.over10_csi));
  Shape(ds.over2_bt >= 10,
        "TPC-DS: large improvements over B+ tree-only as well (>2x: " +
            std::to_string(ds.over2_bt) + ")");
  Shape(reports[1].over2_csi >= reports[1].n_queries / 3,
        "Cust1: hybrid wins big over CSI for a large fraction (paper: >10x "
        "for 30/36 at 172GB scale), measured >2x: " +
            std::to_string(reports[1].over2_csi) + "/" +
            std::to_string(reports[1].n_queries));
  Shape(reports[2].total_hybrid < reports[2].total_csi * 1.25 &&
            reports[2].over2_bt >= reports[2].n_queries / 4,
        "Cust2: hybrid ~= CSI while far better than B+ tree-only (>2x vs "
        "B+tree: " + std::to_string(reports[2].over2_bt) + ")");
  Shape(reports[3].over2_csi >= reports[3].n_queries / 4,
        "Cust3: hybrid wins big over CSI for a large fraction, measured "
        ">2x: " + std::to_string(reports[3].over2_csi));
  int hybrid_plan_workloads = 0;
  for (const auto& r : reports) hybrid_plan_workloads += r.fig10.hybrid_plans > 0;
  Shape(hybrid_plan_workloads >= 3,
        "several workloads contain plans mixing CSI and B+ tree leaves "
        "(Fig 10)");
  return 0;
}
