// Figure 6: mixed OLTP/analytics workload, 10 concurrent threads, Read
// Committed, scan percentage 0% .. 5%. Three designs as in Fig 5:
//   (A) primary B+ tree + secondary B+ tree on shipdate
//   (B) design A + secondary columnstore
//   (C) primary columnstore + secondary B+ tree on shipdate
//
// On top of the paper's transactional mix, three concurrent analytic
// streams (wide Q5 range scans, OUTSIDE any transaction) ride alongside —
// routed through the cooperative shared-scan scheduler and the admission
// gate (--shared=off disables the scheduler; see EXPERIMENTS.md). Their
// latencies land in a separate "analytic" stream per MixedPoint, so the
// Fig 6 transactional-latency shapes are unchanged.
//
// A fourth axis sweeps durability on the hybrid design (B): the same
// update-only mix (scan% = 0) with the WAL off, fsync-per-commit, and
// group commit. 10 writer threads, so the group-commit batching claim
// (mean fsyncs per committed txn < 1 at k >= 8 writers) is measured
// directly from wal.fsyncs deltas.
#include <unistd.h>

#include <filesystem>

#include "bench/bench_util.h"
#include "exec/admission.h"
#include "exec/scan_scheduler.h"
#include "workload/mixed_driver.h"
#include "workload/tpch.h"

using namespace hd;
using namespace hd::bench;

namespace {

Table* Build(Database* db, const std::string& name, uint64_t rows,
             bool primary_csi, bool secondary_csi) {
  TpchOptions to;
  to.rows = rows;
  Table* t = MakeLineitem(db, name, to);
  if (t == nullptr) return nullptr;
  using L = LineitemCols;
  if (primary_csi) {
    if (!t->SetPrimary(PrimaryKind::kColumnStore).ok()) return nullptr;
  } else if (!t->SetPrimary(PrimaryKind::kBTree,
                            {L::kOrderKey, L::kLineNumber}).ok()) {
    return nullptr;
  }
  if (!t->CreateSecondaryBTree("ix_ship", {L::kShipDate}, {}).ok()) return nullptr;
  if (secondary_csi && !t->CreateSecondaryColumnStore("csi").ok()) return nullptr;
  t->Analyze();
  return t;
}

MixedResult RunMix(Database* db, TransactionManager* txns,
                   const std::string& table, double scan_frac, int ops,
                   ScanScheduler* sched, AdmissionController* adm) {
  MixedOptions mo;
  mo.threads = 10;
  mo.total_ops = ops;
  mo.isolation = IsolationLevel::kReadCommitted;
  mo.interval_ms = 100;  // per-interval throughput series for BENCH json
  mo.analytic_threads = 3;
  mo.scan_scheduler = sched;
  mo.admission = adm;
  mo.analytic_gen = [&table](int, Rng* rng) {
    const int32_t d = static_cast<int32_t>(
        rng->Uniform(kTpchShipDateLo, kTpchShipDateHi - 120));
    Query q = TpchQ5Range(table, d, 120);  // wide analytic range scan
    q.id = "analytic";
    return q;
  };
  OpGenerator gen = [&table, scan_frac](int, Rng* rng) {
    const int32_t d = static_cast<int32_t>(
        rng->Uniform(kTpchShipDateLo, kTpchShipDateHi - 40));
    if (rng->Flip(scan_frac)) {
      Query q = TpchQ5Range(table, d, 60);  // analytic scan
      q.id = "scan";
      return q;
    }
    Query q = TpchQ4(table, 10, d);  // short update transaction
    q.id = "update";
    return q;
  };
  return RunMixedWorkload(db, txns, gen, mo);
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv);
  const uint64_t rows = static_cast<uint64_t>(1'000'000 * Scale());
  const int ops = static_cast<int>(1200 * Scale());
  Database db;
  if (Build(&db, "li_a", rows, false, false) == nullptr) return 1;
  if (Build(&db, "li_b", rows, false, true) == nullptr) return 1;
  if (Build(&db, "li_c", rows, true, false) == nullptr) return 1;
  TransactionManager txns;

  // One scheduler + gate shared by every analytic stream in the run, as a
  // server process would wire them. --shared=off measures private scans.
  ScanScheduler sched;
  AdmissionController adm;  // default: 8 slots, depth 64, 2s timeout
  ScanScheduler* sp = flags.RunShared() ? &sched : nullptr;

  const std::vector<double> scan_pct = {0, 1, 2, 3, 4, 5};
  Series a{"Pri.B+tree", {}}, b{"B+t+sec.CSI", {}}, c{"Pri.CSI", {}};
  BenchJson json("fig6_mixed");
  double upd_med_a0 = 0, upd_med_b0 = 0, upd_med_c0 = 0;
  for (double pct : scan_pct) {
    MixedResult ra = RunMix(&db, &txns, "li_a", pct / 100, ops, sp, &adm);
    MixedResult rb = RunMix(&db, &txns, "li_b", pct / 100, ops, sp, &adm);
    MixedResult rc = RunMix(&db, &txns, "li_c", pct / 100, ops, sp, &adm);
    a.ys.push_back(ra.OverallMeanMs());
    b.ys.push_back(rb.OverallMeanMs());
    c.ys.push_back(rc.OverallMeanMs());
    json.MixedPoint(a.name, pct, ra);
    json.MixedPoint(b.name, pct, rb);
    json.MixedPoint(c.name, pct, rc);
    if (pct == 0) {
      upd_med_a0 = ra.per_type["update"].median_ms();
      upd_med_b0 = rb.per_type["update"].median_ms();
      upd_med_c0 = rc.per_type["update"].median_ms();
    }
  }

  std::printf(
      "Figure 6 reproduction: lineitem %llu rows, 10 threads, RC, %d ops\n",
      static_cast<unsigned long long>(rows), ops);
  PrintTable("Fig 6 mean statement latency (ms)", "scan%", scan_pct,
             {a, b, c});

  Shape(upd_med_a0 <= upd_med_b0 && upd_med_a0 < upd_med_c0,
        "with no scans the pure B+ tree design is superior (median update "
        "latency, Sec 3.4): A=" + std::to_string(upd_med_a0) + " B=" +
            std::to_string(upd_med_b0) + " C=" + std::to_string(upd_med_c0));
  Shape(c.ys[0] > a.ys[0] * 3,
        "primary CSI makes the update-only workload much slower, measured " +
            std::to_string(c.ys[0] / a.ys[0]) + "x");
  // From 1% scans on, the hybrid design (B) wins overall.
  bool b_best = true;
  for (size_t i = 1; i < scan_pct.size(); ++i) {
    b_best &= b.ys[i] <= a.ys[i] && b.ys[i] <= c.ys[i];
  }
  Shape(b_best,
        "secondary CSI + B+ tree is the best hybrid once scans appear");
  Shape(a.ys.back() > b.ys.back() * 2,
        "B+ tree-only pays heavily for scans at 5%, measured " +
            std::to_string(a.ys.back() / b.ys.back()) + "x vs hybrid");

  // ---- Durability axis: off / commit / group ----
  // Fresh database per mode; the table is bulk-loaded BEFORE the WAL opens
  // (bulk loads are not logged — they become durable at the next
  // checkpoint, which this bench skips since it never restarts). The
  // update stream then commits through the WAL, so the latency deltas are
  // pure commit-path cost.
  {
    struct DurPoint {
      const char* name;
      DurabilityMode mode;
    };
    const DurPoint dmodes[] = {
        {"dur.off", DurabilityMode::kOff},
        {"dur.commit", DurabilityMode::kCommit},
        {"dur.group", DurabilityMode::kGroup},
    };
    const uint64_t drows = std::max<uint64_t>(rows / 2, 1);
    Series dp50{"update p50 (ms)", {}}, dp99{"update p99 (ms)", {}};
    std::vector<double> dxs;
    double commit_fsyncs_per_txn = 0, group_fsyncs_per_txn = 0;
    int di = 0;
    for (const DurPoint& dm : dmodes) {
      Database ddb;
      if (Build(&ddb, "li_d", drows, false, true) == nullptr) return 1;
      const std::string dir =
          (std::filesystem::temp_directory_path() /
           ("hd_fig6_dur_" + std::to_string(getpid()) + "_" +
            std::to_string(di)))
              .string();
      if (dm.mode != DurabilityMode::kOff) {
        std::filesystem::remove_all(dir);
        if (!ddb.OpenDurability(dir, dm.mode).ok()) return 1;
      }
      TransactionManager dtm;
      dtm.BindWal(ddb.wal());
      const uint64_t fsyncs0 = ddb.wal() ? ddb.wal()->fsyncs() : 0;
      MixedResult rd = RunMix(&ddb, &dtm, "li_d", 0, ops, sp, &adm);
      const uint64_t fsyncs = (ddb.wal() ? ddb.wal()->fsyncs() : 0) - fsyncs0;
      const OpStats& upd = rd.per_type["update"];
      const uint64_t committed = upd.count - upd.failures;
      const double per_txn =
          committed > 0 ? static_cast<double>(fsyncs) / committed : 0;
      if (dm.mode == DurabilityMode::kCommit) commit_fsyncs_per_txn = per_txn;
      if (dm.mode == DurabilityMode::kGroup) group_fsyncs_per_txn = per_txn;
      dp50.ys.push_back(upd.median_ms());
      dp99.ys.push_back(upd.p99_ms());
      dxs.push_back(di);
      json.MixedPoint(dm.name, di, rd);
      std::printf("  %-12s update p50=%8.3f p99=%8.3f ms  fsyncs/txn=%.3f\n",
                  dm.name, upd.median_ms(), upd.p99_ms(), per_txn);
      if (dm.mode != DurabilityMode::kOff) std::filesystem::remove_all(dir);
      ++di;
    }
    PrintTable("Durability axis (0=off 1=commit 2=group), design B, 0% scans",
               "mode", dxs, {dp50, dp99});
    Shape(commit_fsyncs_per_txn >= 1.0,
          "per-commit durability fsyncs at least once per committed txn, "
          "measured " + std::to_string(commit_fsyncs_per_txn));
    Shape(group_fsyncs_per_txn < 1.0,
          "group commit batches fsyncs below one per committed txn at 10 "
          "writers, measured " + std::to_string(group_fsyncs_per_txn));
  }
  json.Write();
  return 0;
}
