// Section 4.4 ablation: columnstore size estimation — black-box sampling
// vs the GEE run-model estimator, against the exactly measured index size.
// Also ablates the CSI candidate-width design choice of Section 4.3
// (all columns vs referenced columns only).
#include "bench/bench_util.h"
#include "core/size_estimation.h"
#include "workload/tpch.h"
#include "workload/micro.h"

using namespace hd;
using namespace hd::bench;

namespace {

struct Case {
  std::string name;
  Table* table;
};

double Err(double est, double exact) {
  return exact > 0 ? est / exact : 0;
}

}  // namespace

int main() {
  const uint64_t rows = static_cast<uint64_t>(1'000'000 * Scale());
  Database db;

  TpchOptions to;
  to.rows = rows;
  Table* lineitem = MakeLineitem(&db, "lineitem", to);
  MicroOptions mo;
  mo.rows = rows;
  mo.max_value = (1ll << 31) - 1;
  Table* wide_uniform = MakeUniformIntTable(&db, "uniform", 4, mo);
  Table* grouped = MakeGroupedTable(&db, "lowcard", rows, 25, 3);
  if (lineitem == nullptr || wide_uniform == nullptr || grouped == nullptr) {
    return 1;
  }

  std::printf("Columnstore size estimation (Section 4.4), %llu rows\n",
              static_cast<unsigned long long>(rows));
  std::printf("%-10s%12s%12s%12s%10s%10s%12s%12s\n", "table", "exact MB",
              "blackbox", "gee", "bb ratio", "gee ratio", "bb ms", "gee ms");

  double worst_bb = 1, worst_gee = 1;
  double bb_time = 0, gee_time = 0;
  for (const Case& c : {Case{"lineitem", lineitem},
                        Case{"uniform", wide_uniform},
                        Case{"lowcard", grouped}}) {
    SizeEstimateOptions so;
    IndexStatsInfo exact = MeasureCsiSizeExact(*c.table, so.rowgroup_size);
    Timer t1;
    IndexStatsInfo bb = EstimateCsiSizeBlackBox(*c.table, so);
    const double t_bb = t1.ElapsedMs();
    Timer t2;
    IndexStatsInfo gee = EstimateCsiSizeGee(*c.table, so);
    const double t_gee = t2.ElapsedMs();
    const double mb = 1024.0 * 1024.0;
    const double rb = Err(bb.size_bytes, exact.size_bytes);
    const double rg = Err(gee.size_bytes, exact.size_bytes);
    std::printf("%-10s%12.2f%12.2f%12.2f%10.2f%10.2f%12.2f%12.2f\n",
                c.name.c_str(), exact.size_bytes / mb, bb.size_bytes / mb,
                gee.size_bytes / mb, rb, rg, t_bb, t_gee);
    worst_bb = std::max(worst_bb, std::max(rb, 1 / rb));
    worst_gee = std::max(worst_gee, std::max(rg, 1 / rg));
    bb_time += t_bb;
    gee_time += t_gee;
  }

  Shape(worst_gee < 4.0,
        "GEE estimator within a small factor of the exact size everywhere "
        "(worst " + std::to_string(worst_gee) + "x)");
  Shape(gee_time < bb_time,
        "GEE estimation cheaper than black-box (no sort/compress of the "
        "sample): " + std::to_string(gee_time) + " vs " +
            std::to_string(bb_time) + " ms");

  // Low-cardinality column: black-box scaling overestimates (n_nationkey
  // effect from Section 4.4); compare per-column error on the 25-distinct
  // column of `lowcard`.
  {
    SizeEstimateOptions so;
    IndexStatsInfo exact = MeasureCsiSizeExact(*grouped, so.rowgroup_size);
    IndexStatsInfo bb = EstimateCsiSizeBlackBox(*grouped, so);
    IndexStatsInfo gee = EstimateCsiSizeGee(*grouped, so);
    const double bb_err = Err(bb.column_bytes[0], exact.column_bytes[0]);
    const double gee_err = Err(gee.column_bytes[0], exact.column_bytes[0]);
    std::printf("\nlow-cardinality column (25 distinct): exact=%llu bb=%.2fx "
                "gee=%.2fx\n",
                static_cast<unsigned long long>(exact.column_bytes[0]), bb_err,
                gee_err);
    Shape(std::max(gee_err, 1 / gee_err) <= std::max(bb_err, 1 / bb_err) * 1.5,
          "GEE at least as accurate as black-box on low-cardinality columns "
          "(the paper's n_nationkey pathology)");
  }

  // ---- Candidate-width ablation (Section 4.3, choice (i) vs (ii)) ----
  // All-columns CSI vs a 4-referenced-columns CSI on lineitem: storage vs
  // the cost of queries that reference other columns later.
  {
    const uint64_t full = MeasureCsiSizeExact(*lineitem, 1u << 17).size_bytes;
    // Referenced-only: quantity, extendedprice, discount, shipdate.
    uint64_t partial = 0;
    IndexStatsInfo exact = MeasureCsiSizeExact(*lineitem, 1u << 17);
    for (int c : {LineitemCols::kQuantity, LineitemCols::kExtendedPrice,
                  LineitemCols::kDiscount, LineitemCols::kShipDate}) {
      partial += exact.column_bytes[c];
    }
    std::printf("\nCSI width ablation: all-columns=%.1fMB referenced-only=%.1fMB "
                "(+%.1f%% storage buys ad-hoc coverage; scans still read only "
                "referenced columns)\n",
                full / 1048576.0, partial / 1048576.0,
                100.0 * (full - partial) / std::max<uint64_t>(1, partial));
    Shape(full < partial * 12,
          "all-columns candidate costs bounded extra storage (choice (ii))");
  }
  return 0;
}
