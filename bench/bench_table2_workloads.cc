// Table 2: aggregate statistics of the read-only evaluation workloads —
// database size, table counts, query counts, average joins per query, and
// average physical operators per plan. Prints both the generated
// (scaled-down) values and the paper's nominal values for the customer
// workloads.
#include "bench/bench_util.h"
#include "workload/customer.h"
#include "workload/tpcds.h"

using namespace hd;
using namespace hd::bench;

namespace {

struct Stats {
  std::string name;
  double db_mb = 0;
  int tables = 0;
  double max_table_mb = 0;
  double avg_cols = 0;
  int queries = 0;
  double avg_joins = 0;
  double avg_ops = 0;  // operators per chosen plan
  // Nominal (paper) values, when applicable.
  double nom_db_gb = 0;
  int nom_tables = 0;
};

Stats Collect(const std::string& name, Database* db,
              const GeneratedWorkload& w) {
  Stats s;
  s.name = name;
  uint64_t total = 0, max_table = 0;
  int ncols = 0;
  for (const auto& [tname, t] : db->tables()) {
    const uint64_t bytes = t->primary_size_bytes();
    total += bytes;
    max_table = std::max(max_table, bytes);
    ncols += t->num_columns();
    ++s.tables;
  }
  s.db_mb = total / (1024.0 * 1024.0);
  s.max_table_mb = max_table / (1024.0 * 1024.0);
  s.avg_cols = static_cast<double>(ncols) / std::max(1, s.tables);
  s.queries = static_cast<int>(w.queries.size());
  Optimizer opt(db);
  Configuration cfg = Configuration::FromCatalog(*db);
  double joins = 0, ops = 0;
  for (const auto& q : w.queries) {
    joins += q.joins.size();
    auto plan = opt.Plan(q, cfg, {});
    if (plan.ok()) {
      // Operators: scans (1 + joins) + join operators + agg + sort.
      ops += 1 + 2 * plan->plan.joins.size() +
             (plan->plan.agg != AggMethod::kNone) + plan->plan.explicit_sort;
    }
  }
  s.avg_joins = joins / std::max(1, s.queries);
  s.avg_ops = ops / std::max(1, s.queries);
  return s;
}

}  // namespace

int main() {
  const double scale = Scale();
  std::vector<Stats> all;
  {
    Database db;
    TpcdsOptions to;
    to.fact_rows = static_cast<uint64_t>(400'000 * scale);
    GeneratedWorkload w = MakeTpcds(&db, to);
    Stats s = Collect("TPC-DS", &db, w);
    s.nom_db_gb = 87.7;
    s.nom_tables = 24;
    all.push_back(s);
  }
  for (int c = 1; c <= 5; ++c) {
    Database db;
    CustomerProfile p = CustProfile(c);
    GeneratedWorkload w = MakeCustomer(&db, p, scale);
    Stats s = Collect(p.name, &db, w);
    s.nom_db_gb = p.nominal_db_gb;
    s.nom_tables = p.nominal_tables;
    all.push_back(s);
  }

  std::printf("Table 2 reproduction (generated, scaled; nominal = paper)\n");
  std::printf("%-9s%10s%8s%12s%10s%9s%10s%9s%12s%12s\n", "workload", "DB MB",
              "tables", "maxTblMB", "avg#cols", "#queries", "avgJoins",
              "avgOps", "nomDB(GB)", "nomTables");
  for (const auto& s : all) {
    std::printf("%-9s%10.1f%8d%12.1f%10.1f%9d%10.2f%9.1f%12.1f%12d\n",
                s.name.c_str(), s.db_mb, s.tables, s.max_table_mb, s.avg_cols,
                s.queries, s.avg_joins, s.avg_ops, s.nom_db_gb, s.nom_tables);
  }

  // Shape checks: query counts and join fan-out match the paper's Table 2.
  Shape(all[0].queries == 97, "TPC-DS workload has 97 queries");
  const int expect_q[5] = {36, 40, 40, 24, 47};
  bool q_ok = true;
  for (int c = 0; c < 5; ++c) q_ok &= all[c + 1].queries == expect_q[c];
  Shape(q_ok, "customer workloads have 36/40/40/24/47 queries (Table 2)");
  Shape(all[5].avg_joins > 2 * all[1].avg_joins,
        "Cust5 is by far the most join-heavy (paper: 21.6 avg joins)");
  bool join_range = true;
  for (int c = 1; c <= 4; ++c) {
    join_range &= all[c].avg_joins >= 4 && all[c].avg_joins <= 12;
  }
  Shape(join_range, "Cust1-4 average 6-9 joins per query (Table 2 range)");
  return 0;
}
