// Kernel microbenchmarks for the vectorized scan/aggregation layer:
//   - BitPacked::Decode batch unpack across every bit width 1..64 (the
//     width-specialized whole-word kernels vs the two-word gather).
//   - Encoded-domain EvalRange into the word-packed SelVector vs the
//     legacy one-byte-per-row match loop it replaced.
//   - Flat open-addressing AggHashTable group-by vs std::unordered_map.
// Emits BENCH_kernels.json (hd-bench/2 Value points, series/x/ms plus a
// derived mrows_s throughput field) and prints an aligned table.
#include <cinttypes>
#include <unordered_map>

#include "bench/bench_util.h"
#include "columnstore/columnstore.h"
#include "columnstore/encoding.h"
#include "common/bloom.h"
#include "common/rng.h"
#include "exec/agg_hash.h"
#include "exec/join_hash.h"

using namespace hd;
using namespace hd::bench;

namespace {

// Best-of-N wall time for one kernel invocation, after one untimed
// warm-up run (first-touch page faults and cold caches otherwise leak
// into the first timed rep). The minimum is the least-noise estimate of
// the kernel's true cost.
template <typename Fn>
double BestMs(int reps, Fn&& fn) {
  fn();
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    best = std::min(best, t.ElapsedMs());
  }
  return best;
}

uint64_t g_sink = 0;  // defeats dead-code elimination across kernels

}  // namespace

int main() {
  const size_t n =
      static_cast<size_t>(4 * 1000 * 1000 * (Scale() > 0 ? Scale() : 1.0));
  const int reps = 5;
  BenchJson json("kernels");
  Rng rng(97);

  // ------------------------------------------------------------------
  // 1. Batch unpack, every width 1..64.
  // ------------------------------------------------------------------
  std::vector<double> widths, unpack_ms;
  std::vector<uint64_t> out(n);
  for (int w = 1; w <= 64; ++w) {
    const uint64_t mask = w == 64 ? ~0ull : (1ull << w) - 1;
    std::vector<uint64_t> vals(n);
    for (size_t i = 0; i < n; ++i) {
      vals[i] = static_cast<uint64_t>(rng.Uniform(0, INT64_MAX)) & mask;
    }
    vals[0] = mask;  // pin the width
    BitPacked p;
    p.Pack(vals);
    const double ms = BestMs(reps, [&] { p.Decode(0, n, out.data()); });
    g_sink += out[n - 1];
    widths.push_back(w);
    unpack_ms.push_back(ms);
    json.Value("unpack", w, "ms", ms);
    json.Value("unpack_mrows_s", w, "mrows_s", n / ms / 1000.0);
  }

  // ------------------------------------------------------------------
  // 2. Selection pipeline: packed-word EvalRange + popcount + ToIndices
  //    vs the legacy byte loop it replaced (byte stores, byte-summing
  //    count, branchy index walk). The pipeline is what ScanGroups runs
  //    per batch: evaluate, count, materialize surviving row indices.
  // ------------------------------------------------------------------
  std::vector<double> sels, ev_bitmap_ms, ev_bytes_ms;
  {
    // 16-bit codes: a realistic dictionary-code width, served by the
    // width-specialized whole-word kernel.
    const uint64_t domain = 1 << 16;
    std::vector<uint64_t> vals(n);
    for (size_t i = 0; i < n; ++i) {
      vals[i] = static_cast<uint64_t>(rng.Uniform(0, domain - 1));
    }
    BitPacked p;
    p.Pack(vals);
    SelVector sel;
    std::vector<uint8_t> bytes(n);
    std::vector<uint32_t> idx(n);
    for (double s : {0.001, 0.01, 0.1, 0.5, 0.99}) {
      // A band predicate (nonzero lo) so both bounds are live compares.
      const uint64_t lo = static_cast<uint64_t>(0.005 * domain);
      const uint64_t hi = lo + static_cast<uint64_t>(s * (domain - lo));
      const double bm = BestMs(reps, [&] {
        sel.Reset(n);
        p.EvalRange(0, n, lo, hi, /*refine=*/false, &sel);
        g_sink += sel.Count();
        g_sink += static_cast<uint64_t>(sel.ToIndices(idx.data()));
      });
      // The pre-bitmap shape: one Get + compare + byte store per row, a
      // byte-summing count, then a branchy walk appending match indices.
      const double by = BestMs(reps, [&] {
        uint64_t matches = 0;
        for (size_t i = 0; i < n; ++i) {
          const uint64_t v = p.Get(i);
          bytes[i] = v >= lo && v <= hi;
        }
        for (size_t i = 0; i < n; ++i) matches += bytes[i];
        size_t k = 0;
        for (size_t i = 0; i < n; ++i) {
          if (bytes[i]) idx[k++] = static_cast<uint32_t>(i);
        }
        g_sink += matches + k;
      });
      sels.push_back(s);
      ev_bitmap_ms.push_back(bm);
      ev_bytes_ms.push_back(by);
      json.Value("select_bitmap", s, "ms", bm);
      json.Value("select_bytes", s, "ms", by);
    }
  }

  // ------------------------------------------------------------------
  // 3. Group-by sink: flat AggHashTable vs the sink it replaced (an
  //    unordered_map keyed by std::vector<int64_t> with vector<AggState>
  //    payloads — one heap node + two heap vectors per group, a vector
  //    hash + deep compare per row). A plain int64-keyed unordered_map is
  //    also timed as an idealized single-pass reference: libstdc++'s
  //    identity-hash map is a strong baseline the batched three-pass flat
  //    path trades blows with; the end-to-end effect is fig. 4's job.
  // ------------------------------------------------------------------
  std::vector<double> gcounts, flat_ms, oldsink_ms, umap_ms;
  for (double gd : {64.0, 4096.0, 262144.0}) {
    const int64_t groups = static_cast<int64_t>(gd);
    std::vector<int64_t> keys(n), vals(n);
    for (size_t i = 0; i < n; ++i) {
      keys[i] = rng.Uniform(0, groups - 1);
      vals[i] = rng.Uniform(0, 1000);
    }
    // Executor shape: batched hash → probe → column update, per-batch
    // scratch staying cache-resident (kBatchSize rows at a time).
    std::vector<uint64_t> hashes(kBatchSize);
    std::vector<uint32_t> gidx(kBatchSize);
    const double fm = BestMs(reps, [&] {
      AggHashTable t;
      t.Init(/*key_words=*/1, /*num_aggs=*/1);
      for (size_t base = 0; base < n; base += kBatchSize) {
        const size_t take = std::min<size_t>(kBatchSize, n - base);
        t.ComputeHashes(keys.data() + base, take, hashes.data());
        constexpr size_t kPD = 16;  // payload prefetch distance
        for (size_t i = 0; i < take; ++i) {
          if (i + kPD < take) t.PrefetchFor(hashes[i + kPD]);
          gidx[i] = static_cast<uint32_t>(t.FindOrInsert(
              &keys[base + i], hashes[i], static_cast<size_t>(-1)));
        }
        for (size_t i = 0; i < take; ++i) {
          AggState& s = *t.StatesAt(gidx[i]);
          s.count += 1;
          s.i += vals[base + i];
        }
      }
      g_sink += t.size() + t.StatesAt(0)->count;
    });
    // The pre-flat-table executor sink, faithfully: a reused key vector
    // filled per row, a byte-mixing vector hash, find-then-emplace with a
    // heap-allocated AggState vector per group.
    struct VecHash {
      size_t operator()(const std::vector<int64_t>& v) const {
        size_t h = 0xcbf29ce484222325ull;
        for (int64_t x : v) {
          h ^= static_cast<size_t>(x) + 0x9e3779b97f4a7c15ull + (h << 6) +
               (h >> 2);
        }
        return h;
      }
    };
    const double om = BestMs(reps, [&] {
      std::unordered_map<std::vector<int64_t>, std::vector<AggState>, VecHash>
          groups;
      std::vector<int64_t> key(1);
      for (size_t i = 0; i < n; ++i) {
        key[0] = keys[i];
        auto it = groups.find(key);
        if (it == groups.end()) {
          it = groups.emplace(key, std::vector<AggState>(1)).first;
        }
        AggState& s = it->second[0];
        s.count += 1;
        s.i += vals[i];
      }
      g_sink += groups.size();
    });
    struct MapState {
      uint64_t count = 0;
      int64_t sum = 0;
    };
    const double um = BestMs(reps, [&] {
      std::unordered_map<int64_t, MapState> m;
      for (size_t i = 0; i < n; ++i) {
        MapState& s = m[keys[i]];
        s.count += 1;
        s.sum += vals[i];
      }
      g_sink += m.size();
    });
    gcounts.push_back(gd);
    flat_ms.push_back(fm);
    oldsink_ms.push_back(om);
    umap_ms.push_back(um);
    json.Value("groupby_flat", gd, "ms", fm);
    json.Value("groupby_old_sink", gd, "ms", om);
    json.Value("groupby_unordered_map", gd, "ms", um);
  }

  // ------------------------------------------------------------------
  // 4. Join probe: the batch pipeline the executor ships for CSI-driven
  //    hash joins (blocked-Bloom prefilter on the decoded key vector,
  //    then the three-kernel ComputeHashes / FindSlots / ExpandMatches
  //    sequence over the survivors) vs the row-at-a-time Find() loop row
  //    mode runs, which has no Bloom pushdown. Selective FK -> PK probe:
  //    the build side covers 1/8th of the probe key space, so most probe
  //    rows miss — the regime Bloom pushdown exists for. Also times the
  //    two supporting kernels in isolation (Bloom membership, match
  //    expansion on a duplicate-heavy build side).
  // ------------------------------------------------------------------
  std::vector<double> bsizes, probe_row_ms, probe_batch_ms, bloom_ms,
      expand_ms;
  double big_row_ms = 0, big_batch_ms = 0;
  for (size_t nd : {size_t{4096}, size_t{1} << 20}) {
    std::vector<std::pair<int64_t, uint32_t>> pairs;
    pairs.reserve(nd);
    for (size_t i = 0; i < nd; ++i) {
      // Sparse non-contiguous keys so hashing actually earns its keep.
      pairs.emplace_back(static_cast<int64_t>(i * 7 + 3),
                         static_cast<uint32_t>(i));
    }
    FlatJoinMap map;
    map.Build(pairs);
    BlockedBloomFilter bf;
    bf.Init(nd);
    for (const auto& [k, v] : pairs) {
      (void)v;
      bf.Insert(k);
    }
    // Probe keys span 8x the build key space: ~12.5% of probes hit.
    std::vector<int64_t> probe(n);
    for (size_t i = 0; i < n; ++i) {
      probe[i] = static_cast<int64_t>(
                     rng.Uniform(0, static_cast<int64_t>(nd) * 8 - 1)) *
                     7 +
                 3;
    }
    const double rm = BestMs(reps, [&] {
      uint64_t hits = 0, acc = 0;
      for (size_t i = 0; i < n; ++i) {
        uint32_t cnt = 0;
        const uint32_t* idx = map.Find(probe[i], &cnt);
        hits += cnt;
        if (cnt > 0) acc += idx[0];
      }
      g_sink += hits + acc;
    });
    std::vector<int64_t> keybuf(kBatchSize);
    std::vector<uint64_t> hashes(kBatchSize);
    std::vector<int32_t> slots(kBatchSize);
    std::vector<uint32_t> prow, brow;
    const double bm = BestMs(reps, [&] {
      uint64_t hits = 0;
      for (size_t base = 0; base < n; base += kBatchSize) {
        const size_t take = std::min<size_t>(kBatchSize, n - base);
        // Bloom prefilter + compaction, as ScanGroups does on the decoded
        // key column before any other column is gathered.
        size_t m = 0;
        for (size_t i = 0; i < take; ++i) {
          const int64_t k = probe[base + i];
          keybuf[m] = k;
          m += bf.MayContain(k);
        }
        map.ComputeHashes(keybuf.data(), m, hashes.data());
        map.FindSlots(keybuf.data(), hashes.data(), m, slots.data());
        prow.clear();
        brow.clear();
        hits += map.ExpandMatches(slots.data(), m, &prow, &brow);
      }
      g_sink += hits;
    });
    const double fm = BestMs(reps, [&] {
      uint64_t pass = 0;
      for (size_t i = 0; i < n; ++i) pass += bf.MayContain(probe[i]);
      g_sink += pass;
    });
    // Expansion in isolation, on a duplicate-heavy build side (8 rows per
    // key): resolve slots once untimed, then time the expansion kernel.
    std::vector<std::pair<int64_t, uint32_t>> dup_pairs;
    for (size_t i = 0; i < nd; ++i) {
      dup_pairs.emplace_back(static_cast<int64_t>((i / 8) * 7 + 3),
                             static_cast<uint32_t>(i));
    }
    FlatJoinMap dup_map;
    dup_map.Build(dup_pairs);
    std::vector<int32_t> dup_slots(n);
    {
      std::vector<uint64_t> h(n);
      dup_map.ComputeHashes(probe.data(), n, h.data());
      // Probe keys target the duplicated key space.
      for (size_t i = 0; i < n; ++i) {
        probe[i] = static_cast<int64_t>(
                       rng.Uniform(0, static_cast<int64_t>(nd / 8) - 1)) *
                       7 +
                   3;
      }
      dup_map.ComputeHashes(probe.data(), n, h.data());
      dup_map.FindSlots(probe.data(), h.data(), n, dup_slots.data());
    }
    const double em = BestMs(reps, [&] {
      uint64_t hits = 0;
      for (size_t base = 0; base < n; base += kBatchSize) {
        const size_t take = std::min<size_t>(kBatchSize, n - base);
        prow.clear();
        brow.clear();
        hits += dup_map.ExpandMatches(dup_slots.data() + base, take, &prow,
                                      &brow);
      }
      g_sink += hits;
    });
    bsizes.push_back(static_cast<double>(nd));
    probe_row_ms.push_back(rm);
    probe_batch_ms.push_back(bm);
    bloom_ms.push_back(fm);
    expand_ms.push_back(em);
    big_row_ms = rm;
    big_batch_ms = bm;
    json.Value("join_probe_row", static_cast<double>(nd), "ms", rm);
    json.Value("join_probe_batch", static_cast<double>(nd), "ms", bm);
    json.Value("join_bloom_check", static_cast<double>(nd), "ms", fm);
    json.Value("join_match_expand", static_cast<double>(nd), "ms", em);
  }

  std::printf("Kernel microbenchmarks: %zu rows/kernel, best of %d (sink=%" PRIu64 ")\n",
              n, reps, g_sink);
  PrintTable("Batch unpack (ms, 4M values)", "bit width", widths,
             {{"Decode", unpack_ms}});
  PrintTable("Selection pipeline (ms, 4M values, 16-bit codes)", "selectivity",
             sels, {{"bitmap", ev_bitmap_ms}, {"byte loop", ev_bytes_ms}});
  PrintTable("Group-by sink (ms, 4M rows)", "#groups", gcounts,
             {{"flat table", flat_ms},
              {"old vec-key sink", oldsink_ms},
              {"int64 umap", umap_ms}});
  PrintTable("Join probe (ms, 4M selective FK->PK probes)", "build rows",
             bsizes,
             {{"row Find()", probe_row_ms},
              {"bloom+batch", probe_batch_ms},
              {"bloom check", bloom_ms},
              {"match expand", expand_ms}});

  // Evaluation is one compare per element on both sides, so the bitmap
  // pipeline's edge comes from Count (a popcount scan over n/64 words) and
  // ToIndices (skips empty words whole) vs the byte path re-walking all n
  // bytes for each. Near selectivity 1 both paths converge to parity —
  // assert no-worse-than-noise there and a clear mid-selectivity win.
  double bitmap_worst = 0, bitmap_best = 0;
  for (size_t i = 0; i < sels.size(); ++i) {
    bitmap_worst = std::max(bitmap_worst, ev_bitmap_ms[i] / ev_bytes_ms[i]);
    bitmap_best = std::max(bitmap_best, ev_bytes_ms[i] / ev_bitmap_ms[i]);
  }
  Shape(bitmap_worst < 1.15 && bitmap_best > 1.5,
        "bitmap selection pipeline never loses to the byte loop beyond noise "
        "and wins clearly at selective predicates (worst ratio " +
            std::to_string(bitmap_worst) + ", best speedup " +
            std::to_string(bitmap_best) + "x)");
  // The flat table's structural payoff is at high group counts — the
  // regime that decides fig. 4's spill threshold — where the old sink pays
  // one heap node plus two heap vectors per group and a pointer chase per
  // row. At tiny group counts everything is cache-resident and the isolated
  // sink comparison hides the old path's other per-row costs (key vector
  // fills, a branchy per-row aggregate switch); the end-to-end effect is
  // measured by bench_fig4_groupby, which improved at every group count.
  Shape(flat_ms.back() < oldsink_ms.back(),
        "flat aggregate table beats the replaced vector-keyed sink at high "
        "group counts (" +
            std::to_string(oldsink_ms.back() / flat_ms.back()) + "x)");
  // The acceptance bar for the batch-join pipeline: once the build side's
  // directory no longer fits in cache, the Bloom prefilter plus the
  // hash+prefetch / resolve / expand kernel sequence must beat
  // row-at-a-time Find() by >= 1.5x on a selective FK -> PK probe. Row
  // mode pays a directory-sized cache miss per probe row; the batch path
  // answers most rows from the (cache-resident) Bloom filter and only
  // walks the directory for the survivors.
  Shape(big_row_ms / big_batch_ms >= 1.5,
        "bloom + vectorized probe beats row-mode Find() on a selective "
        "out-of-cache FK->PK join (" +
            std::to_string(big_row_ms / big_batch_ms) + "x)");
  json.Write();
  return 0;
}
