// Figure 13 (Appendix A.2): concurrent-query behavior of the two designs,
// measured with REAL concurrency — k OS threads each running a closed loop
// of queries against the engine (no analytic model).
//
// Part A reproduces the paper's observation that the B+ tree / columnstore
// selectivity crossover shifts with concurrency: per-query parallelism
// stops helping once clients outnumber cores, while shared columnstore
// scans amortize decode across clients.
//
// Part B isolates the shared-scan win: the same Zipf-skewed analytic
// stream on the CSI table with cooperative shared scans ON vs OFF
// (private scans), sweeping the client count. The ISSUE acceptance bar:
// at k>=16, shared >= 2x aggregate throughput with per-query p99 no worse.
//
// Part C exercises admission control at 4x oversubscription: 32 clients
// against 8 slots must bound in-flight queries at 8 and queue depth at the
// configured limit, and a deliberately tiny gate must shed with a typed
// kResourceExhausted.
//
// With --remote the Part B sweep runs end-to-end through hd_server: an
// in-process server (fresh per series, shared scans toggled by
// ServerOptions) and k socket clients sending the same wide aggregate as
// SQL text over hd-proto/1 (docs/PROTOCOL.md). Parts A and C are skipped
// — the remote question is only whether the shared>private ordering
// survives the socket/session layer. Wire framing and per-statement
// planning (the SQL constants change every iteration, so the session
// plan cache cannot hit) tax both series identically.
//
// Flags (see EXPERIMENTS.md): --threads=N (single-k sweep), --queries=N
// (queries per measured point), --shared={on,off,both}, --remote.
#include <atomic>
#include <optional>
#include <thread>

#include "bench/bench_util.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "exec/admission.h"
#include "exec/scan_scheduler.h"
#include "server/client.h"
#include "server/server.h"
#include "workload/micro.h"

using namespace hd;
using namespace hd::bench;

namespace {

struct ConcurrentResult {
  double wall_ms = 0;
  std::vector<double> latencies_ms;
  QueryMetrics metrics;
  uint64_t failures = 0;
  uint64_t exhausted = 0;

  double qps() const {
    return wall_ms > 0 ? latencies_ms.size() * 1000.0 / wall_ms : 0;
  }
  double PercentileMs(double p) const {
    if (latencies_ms.empty()) return 0;
    std::vector<double> v = latencies_ms;
    const size_t k = std::min(v.size() - 1, static_cast<size_t>(v.size() * p));
    std::nth_element(v.begin(), v.begin() + k, v.end());
    return v[k];
  }
};

/// SELECT sum(col1),...,sum(col<payload>) FROM t WHERE col0 BETWEEN lo/hi.
/// Aggregating columns OTHER than the predicate column keeps the query off
/// the encoded-domain pushdown fast path (it must materialize payload
/// values), which is exactly the decode work shared scans amortize.
Query WideSum(const std::string& table, int payload, int64_t lo, int64_t hi) {
  Query q;
  q.id = "Qw" + std::to_string(payload);
  q.base.table = table;
  q.base.preds.push_back(Pred::Between(0, Value::Int64(lo), Value::Int64(hi)));
  for (int c = 1; c <= payload; ++c) {
    q.aggs.push_back(
        AggSpec::Sum(Expr::Col(0, c), "sum_col" + std::to_string(c)));
  }
  return q;
}

/// Run `k` client threads, each executing `iters` queries drawn from a
/// Zipf-skewed range generator, and merge their latencies/metrics.
/// `shared` routes CSI scans through `sched`; private clients get a
/// per-query DOP that divides the machine fairly (max(1, cores/k)).
/// `payload` > 1 widens the query to sum that many payload columns.
ConcurrentResult RunClients(Database* db, const std::string& table, int k,
                            int iters, double selectivity, bool shared,
                            ScanScheduler* sched, AdmissionController* adm,
                            uint64_t seed, int payload = 1) {
  ConcurrentResult out;
  std::mutex mu;
  const int hw = ThreadPool::HardwareDop();
  const int private_dop = std::max(1, hw / std::max(1, k));
  std::vector<std::thread> clients;
  clients.reserve(k);
  for (int t = 0; t < k; ++t) {
    clients.emplace_back([&, t] {
      ZipfPredOptions zo;
      zo.selectivity = selectivity;
      zo.seed = seed + static_cast<uint64_t>(t) * 7919;
      ZipfPredicateGen gen(zo);
      Optimizer opt(db);
      Configuration cfg = Configuration::FromCatalog(*db);
      std::vector<double> lat;
      QueryMetrics qm;
      uint64_t fails = 0, exh = 0;
      // Plan once per client: every iteration's query is structurally
      // identical (same table, same aggregate list, same predicate
      // column — only the range constants move), so the physical plan is
      // too. Executing a fresh Query against the cached plan keeps
      // planner/catalog time out of the measured scan-throughput window
      // for both series alike.
      PlanOptions popts;
      popts.max_dop = shared ? 1 : private_dop;
      std::optional<PhysicalPlan> cached;
      for (int i = 0; i < iters; ++i) {
        int64_t lo, hi;
        gen.NextRange(&lo, &hi);
        Query q = payload > 1 ? WideSum(table, payload, lo, hi)
                              : MicroQ1SumOther(table, lo, hi);
        if (!cached.has_value()) {
          auto plan = opt.Plan(q, cfg, popts);
          if (!plan.ok()) {
            ++fails;
            continue;
          }
          cached = plan->plan;
        }
        ExecContext ctx;
        ctx.db = db;
        ctx.max_dop = shared ? 1 : private_dop;
        ctx.scan_scheduler = shared ? sched : nullptr;
        ctx.admission = adm;
        Executor ex(ctx);
        Timer timer;
        QueryResult r = ex.Execute(q, *cached);
        lat.push_back(timer.ElapsedMs());
        qm.Merge(r.metrics);
        if (!r.status.ok()) {
          ++fails;
          if (r.status.IsResourceExhausted()) ++exh;
        }
      }
      std::lock_guard<std::mutex> g(mu);
      out.latencies_ms.insert(out.latencies_ms.end(), lat.begin(), lat.end());
      out.metrics.Merge(qm);
      out.failures += fails;
      out.exhausted += exh;
    });
  }
  Timer wall;
  // Threads started above race the Timer by microseconds; the measured
  // window is dominated by the query loops.
  for (auto& c : clients) c.join();
  out.wall_ms = wall.ElapsedMs();
  return out;
}

/// The WideSum query as SQL text for the remote path (same shape the
/// in-process Part B executes; constants move per iteration).
std::string WideSumSql(const std::string& table, int payload, int64_t lo,
                       int64_t hi) {
  std::string sql = "SELECT ";
  for (int c = 1; c <= payload; ++c) {
    if (c > 1) sql += ", ";
    sql += "sum(col" + std::to_string(c) + ")";
  }
  sql += " FROM " + table + " WHERE col0 BETWEEN " + std::to_string(lo) +
         " AND " + std::to_string(hi);
  return sql;
}

/// Remote twin of RunClients: k socket clients, each with its own
/// connection/session, issuing SQL text against a running hd_server.
ConcurrentResult RunRemoteClients(int port, const std::string& table, int k,
                                  int iters, double selectivity,
                                  uint64_t seed, int payload) {
  ConcurrentResult out;
  std::mutex mu;
  std::vector<std::thread> clients;
  clients.reserve(k);
  for (int t = 0; t < k; ++t) {
    clients.emplace_back([&, t] {
      ZipfPredOptions zo;
      zo.selectivity = selectivity;
      zo.seed = seed + static_cast<uint64_t>(t) * 7919;
      ZipfPredicateGen gen(zo);
      std::vector<double> lat;
      uint64_t fails = 0, exh = 0;
      Client c;
      if (!c.Connect("127.0.0.1", port, "bench-" + std::to_string(t)).ok()) {
        std::lock_guard<std::mutex> g(mu);
        out.failures += static_cast<uint64_t>(iters);
        return;
      }
      for (int i = 0; i < iters; ++i) {
        int64_t lo, hi;
        gen.NextRange(&lo, &hi);
        Timer timer;
        auto r = c.Query(WideSumSql(table, payload, lo, hi));
        lat.push_back(timer.ElapsedMs());
        if (!r.ok()) {
          ++fails;
          if (r.status().IsResourceExhausted()) ++exh;
        }
      }
      (void)c.Close();
      std::lock_guard<std::mutex> g(mu);
      out.latencies_ms.insert(out.latencies_ms.end(), lat.begin(), lat.end());
      out.failures += fails;
      out.exhausted += exh;
    });
  }
  Timer wall;
  for (auto& c : clients) c.join();
  out.wall_ms = wall.ElapsedMs();
  return out;
}

/// --remote Part B: the shared-vs-private client sweep, end to end
/// through the socket/session layer. One server per (series, k) point so
/// every point starts with fresh pass state and exactly k session
/// workers (thread-per-client, like the in-process bench). The dop split
/// mirrors RunClients: shared consumers run at dop 1, private clients
/// divide the machine.
/// Per-point server-side latency: the session layer records every
/// statement into the `server.query_ns` histogram; resetting it before a
/// point and reading quantiles after isolates that point's distribution.
/// Reported next to the client-side numbers, the gap is pure wire +
/// framing + queueing — the part EXPERIMENTS.md says the remote mode
/// exists to expose.
void ServerSidePercentiles(double* p50_ms, double* p99_ms) {
  const HistSnapshot h =
      Telemetry::Instance().Histogram("server.query_ns")->Snapshot();
  *p50_ms = h.Quantile(0.5) / 1e6;
  *p99_ms = h.Quantile(0.99) / 1e6;
}

void RunRemotePartB(Database* db, const BenchFlags& flags, BenchJson* json) {
  const std::vector<int> ks = flags.threads > 0
                                  ? std::vector<int>{flags.threads}
                                  : std::vector<int>{1, 2, 4, 8, 16, 32, 64};
  const int total_q = flags.queries > 0 ? flags.queries : 192;
  const double sel = 0.80;
  const int payload = 4;
  const int hw = ThreadPool::HardwareDop();
  Series s_priv{"private qps", {}}, s_shared{"shared qps", {}};
  std::vector<double> kxs;
  double priv16 = 0, shared16 = 0, priv16_p99 = 0, shared16_p99 = 0;
  const int probe_k = ks.back() >= 16 ? 16 : ks.back();
  const uint64_t attaches_before =
      Telemetry::Instance().Counter("scan.shared_attaches")->Value();
  for (int k : ks) {
    const int iters = std::max(2, total_q / k);
    kxs.push_back(k);
    if (flags.RunPrivate()) {
      ServerOptions so;
      so.workers = k;
      so.max_sessions = k + 4;
      so.shared_scans = false;
      so.max_dop = std::max(1, hw / std::max(1, k));
      Server server(db, so);
      if (!server.Start().ok()) std::exit(1);
      Telemetry::Instance().Histogram("server.query_ns")->Reset();
      ConcurrentResult r = RunRemoteClients(server.port(), "t_csi", k, iters,
                                            sel, /*seed=*/101 + k, payload);
      double sp50 = 0, sp99 = 0;
      ServerSidePercentiles(&sp50, &sp99);
      server.Stop();
      s_priv.ys.push_back(r.qps());
      json->Value("csi_private_remote", k, "throughput_qps", r.qps());
      json->Value("csi_private_remote", k, "p50_ms", r.PercentileMs(0.5));
      json->Value("csi_private_remote", k, "p99_ms", r.PercentileMs(0.99));
      json->Value("csi_private_remote", k, "server_p50_ms", sp50);
      json->Value("csi_private_remote", k, "server_p99_ms", sp99);
      if (k == probe_k) {
        priv16 = r.qps();
        priv16_p99 = r.PercentileMs(0.99);
      }
    }
    if (flags.RunShared()) {
      ServerOptions so;
      so.workers = k;
      so.max_sessions = k + 4;
      so.shared_scans = true;
      so.max_dop = 1;
      Server server(db, so);
      if (!server.Start().ok()) std::exit(1);
      Telemetry::Instance().Histogram("server.query_ns")->Reset();
      ConcurrentResult r = RunRemoteClients(server.port(), "t_csi", k, iters,
                                            sel, /*seed=*/101 + k, payload);
      double sp50 = 0, sp99 = 0;
      ServerSidePercentiles(&sp50, &sp99);
      server.Stop();
      s_shared.ys.push_back(r.qps());
      json->Value("csi_shared_remote", k, "throughput_qps", r.qps());
      json->Value("csi_shared_remote", k, "p50_ms", r.PercentileMs(0.5));
      json->Value("csi_shared_remote", k, "p99_ms", r.PercentileMs(0.99));
      json->Value("csi_shared_remote", k, "server_p50_ms", sp50);
      json->Value("csi_shared_remote", k, "server_p99_ms", sp99);
      if (k == probe_k) {
        shared16 = r.qps();
        shared16_p99 = r.PercentileMs(0.99);
      }
    }
  }
  std::vector<Series> series;
  if (flags.RunPrivate()) series.push_back(s_priv);
  if (flags.RunShared()) series.push_back(s_shared);
  PrintTable("Fig 13b REMOTE shared-scan throughput (queries/s) vs #clients",
             "#clients", kxs, series);
  if (flags.RunPrivate() && flags.RunShared()) {
    // The remote bar is the ordering, not the 2x multiple: wire framing
    // and per-statement planning dilute the ratio but not the winner.
    Shape(shared16 > priv16,
          "k=" + std::to_string(probe_k) +
              " over sockets: shared scans beat private aggregate "
              "throughput (" + std::to_string(shared16) + " vs " +
              std::to_string(priv16) + " qps)");
    Shape(shared16_p99 <= 1.5 * priv16_p99,
          "k=" + std::to_string(probe_k) +
              " over sockets: shared p99 not inflated vs private (" +
              std::to_string(shared16_p99) + " vs " +
              std::to_string(priv16_p99) + " ms)");
  }
  if (flags.RunShared()) {
    const uint64_t attaches =
        Telemetry::Instance().Counter("scan.shared_attaches")->Value() -
        attaches_before;
    Shape(attaches > 0,
          "remote sessions attached to cooperative passes "
          "(scan.shared_attaches=" + std::to_string(attaches) + ")");
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv);
  const uint64_t rows = static_cast<uint64_t>(2'000'000 * Scale());
  const int64_t maxv = (1ll << 31) - 1;

  Database db;
  MicroOptions mo;
  mo.rows = rows;
  mo.max_value = maxv;
  // col0 carries the predicate; col1..col4 are payload columns the Part B
  // wide aggregate materializes (the decode work shared passes amortize).
  Table* bt = MakeUniformIntTable(&db, "t_btree", 5, mo);
  Table* ct = MakeUniformIntTable(&db, "t_csi", 5, mo);
  if (bt == nullptr || ct == nullptr) return 1;
  if (!bt->SetPrimary(PrimaryKind::kBTree, {0}).ok()) return 1;
  if (!ct->SetPrimary(PrimaryKind::kColumnStore).ok()) return 1;
  db.WarmAll();

  // Remote runs write their own artifact so a quick --remote pass never
  // clobbers the committed in-process record.
  BenchJson json(flags.remote ? "fig13_concurrency_remote"
                              : "fig13_concurrency");
  std::printf("Figure 13 reproduction: %llu rows, %d hardware threads, "
              "genuinely concurrent clients%s\n",
              static_cast<unsigned long long>(rows),
              ThreadPool::HardwareDop(),
              flags.remote ? " (REMOTE: SQL over hd-proto/1 sockets)" : "");

  if (flags.remote) {
    RunRemotePartB(&db, flags, &json);
    json.Write();
    return 0;
  }

  // ---- Part A: B+ tree vs shared-CSI crossover under concurrency -------
  {
    ScanScheduler sched;
    const std::vector<int> ks =
        flags.threads > 0 ? std::vector<int>{flags.threads}
                          : std::vector<int>{1, 8, 32};
    const std::vector<double> sel_pct = {0.01, 0.1, 1, 5, 10, 20, 40};
    const int total_q = flags.queries > 0 ? flags.queries : 24;
    Series cross{"crossover sel%", {}};
    std::vector<double> kxs;
    for (int k : ks) {
      const int iters = std::max(1, total_q / k);
      double crossing = -1;
      for (double pct : sel_pct) {
        ConcurrentResult rb = RunClients(&db, "t_btree", k, iters, pct / 100,
                                         /*shared=*/false, nullptr, nullptr,
                                         /*seed=*/11 + k);
        ConcurrentResult rc = RunClients(&db, "t_csi", k, iters, pct / 100,
                                         /*shared=*/true, &sched, nullptr,
                                         /*seed=*/11 + k);
        json.Point("btree_k" + std::to_string(k), pct, rb.metrics);
        json.Point("csi_shared_k" + std::to_string(k), pct, rc.metrics);
        json.Value("btree_k" + std::to_string(k), pct, "mean_ms",
                   rb.latencies_ms.empty()
                       ? 0
                       : rb.wall_ms * k / rb.latencies_ms.size());
        if (crossing < 0 && rc.qps() >= rb.qps()) crossing = pct;
      }
      if (crossing < 0) crossing = sel_pct.back();
      kxs.push_back(k);
      cross.ys.push_back(crossing);
      json.Value("crossover", k, "crossover_sel_pct", crossing);
    }
    PrintTable("Fig 13 selectivity crossover vs #concurrent clients",
               "#clients", kxs, {cross});
    Shape(cross.ys.back() <= cross.ys.front(),
          "crossover falls (or holds) as clients grow: shared CSI scans "
          "amortize decode across clients while B+ tree work stays per-query");
  }

  // ---- Part B: shared scans ON vs OFF, client sweep on the CSI table ---
  {
    const std::vector<int> ks =
        flags.threads > 0 ? std::vector<int>{flags.threads}
                          : std::vector<int>{1, 2, 4, 8, 16, 32, 64};
    // Enough queries per point that steady-state overlap (every consumer
    // attached) dominates the thread ramp-in/out at the edges.
    const int total_q = flags.queries > 0 ? flags.queries : 192;
    // Wide dashboard shape: BETWEEN ranges spanning most of the domain, four
    // payload sums. At this selectivity a private scan bulk-decodes all four
    // payload columns for nearly every group on every query; a shared pass
    // decodes each group once for everyone, so the decode bill — the dominant
    // cost — is amortized across all attached consumers.
    const double sel = 0.80;
    const int payload = 4;
    Series s_priv{"private qps", {}}, s_shared{"shared qps", {}};
    std::vector<double> kxs;
    double priv16 = 0, shared16 = 0, priv16_p99 = 0, shared16_p99 = 0;
    uint64_t segs_shared_total = 0;
    const int probe_k = ks.back() >= 16 ? 16 : ks.back();
    for (int k : ks) {
      const int iters = std::max(2, total_q / k);
      kxs.push_back(k);
      if (flags.RunPrivate()) {
        ConcurrentResult r = RunClients(&db, "t_csi", k, iters, sel,
                                        /*shared=*/false, nullptr, nullptr,
                                        /*seed=*/101 + k, payload);
        s_priv.ys.push_back(r.qps());
        json.Point("csi_private", k, r.metrics);
        json.Value("csi_private", k, "throughput_qps", r.qps());
        json.Value("csi_private", k, "p50_ms", r.PercentileMs(0.5));
        json.Value("csi_private", k, "p99_ms", r.PercentileMs(0.99));
        if (k == probe_k) {
          priv16 = r.qps();
          priv16_p99 = r.PercentileMs(0.99);
        }
      }
      if (flags.RunShared()) {
        ScanScheduler sched;  // fresh pass state per point
        ConcurrentResult r = RunClients(&db, "t_csi", k, iters, sel,
                                        /*shared=*/true, &sched, nullptr,
                                        /*seed=*/101 + k, payload);
        s_shared.ys.push_back(r.qps());
        json.Point("csi_shared", k, r.metrics);
        json.Value("csi_shared", k, "throughput_qps", r.qps());
        json.Value("csi_shared", k, "p50_ms", r.PercentileMs(0.5));
        json.Value("csi_shared", k, "p99_ms", r.PercentileMs(0.99));
        segs_shared_total += r.metrics.segments_shared.load();
        if (k == probe_k) {
          shared16 = r.qps();
          shared16_p99 = r.PercentileMs(0.99);
        }
      }
    }
    std::vector<Series> series;
    if (flags.RunPrivate()) series.push_back(s_priv);
    if (flags.RunShared()) series.push_back(s_shared);
    PrintTable("Fig 13b shared-scan throughput (queries/s) vs #clients",
               "#clients", kxs, series);
    if (flags.RunPrivate() && flags.RunShared()) {
      Shape(shared16 >= 2 * priv16,
            "k=" + std::to_string(probe_k) + ": shared scans >= 2x private "
            "aggregate throughput (" + std::to_string(shared16) + " vs " +
                std::to_string(priv16) + " qps)");
      Shape(shared16_p99 <= priv16_p99,
            "k=" + std::to_string(probe_k) + ": shared p99 no worse than "
            "private (" + std::to_string(shared16_p99) + " vs " +
                std::to_string(priv16_p99) + " ms)");
    }
    if (flags.RunShared()) {
      Shape(segs_shared_total > 0,
            "shared passes actually shared decoded segments "
            "(segments_shared=" + std::to_string(segs_shared_total) + ")");
    }
  }

  // ---- Part C: admission control at 4x oversubscription ----------------
  {
    AdmissionOptions ao;
    ao.max_concurrent = 8;
    ao.max_queue_depth = 64;
    ao.queue_timeout_ms = 60'000;  // drain, don't shed, in the bound probe
    AdmissionController ac(ao);
    const int k = 32;  // 4x the slot count
    const int iters = std::max(1, (flags.queries > 0 ? flags.queries : 64) / k);
    ConcurrentResult r = RunClients(&db, "t_csi", k, iters, 0.10,
                                    /*shared=*/false, nullptr, &ac,
                                    /*seed=*/7);
    json.Value("admission", k, "peak_running", ac.peak_running());
    json.Value("admission", k, "peak_queued", ac.peak_queued());
    json.Value("admission", k, "admitted", static_cast<double>(ac.admitted()));
    std::printf("\n== Fig 13c admission @ 4x oversubscription ==\n"
                "clients=%d slots=%d peak_running=%d peak_queued=%d "
                "admitted=%llu shed=%llu timeouts=%llu\n",
                k, ao.max_concurrent, ac.peak_running(), ac.peak_queued(),
                static_cast<unsigned long long>(ac.admitted()),
                static_cast<unsigned long long>(ac.shed()),
                static_cast<unsigned long long>(ac.timeouts()));
    Shape(ac.peak_running() <= ao.max_concurrent,
          "in-flight queries bounded at max_concurrent under 4x "
          "oversubscription (peak_running=" +
              std::to_string(ac.peak_running()) + ")");
    Shape(ac.peak_queued() <= ao.max_queue_depth && r.failures == 0,
          "queue depth bounded and no query lost (peak_queued=" +
              std::to_string(ac.peak_queued()) + ")");
    const uint64_t waits =
        Telemetry::Instance().Histogram("admission.queue_wait_ns")->count();
    Shape(waits > 0, "queue-wait histogram populated (admission.queue_wait_ns "
                     "count=" + std::to_string(waits) + ")");

    // Deliberately tiny gate: 1 slot, queue depth 1, 50ms timeout, and the
    // one slot held for the whole probe — every query MUST surface a
    // well-typed kResourceExhausted (shed or queue timeout), not a hang
    // or a crash.
    AdmissionOptions tiny;
    tiny.max_concurrent = 1;
    tiny.max_queue_depth = 1;
    tiny.queue_timeout_ms = 50;
    AdmissionController tc(tiny);
    AdmissionController::Ticket held;
    if (!tc.Admit(0, &held).ok()) return 1;
    ConcurrentResult shed = RunClients(&db, "t_csi", 6, 2, 0.4,
                                       /*shared=*/false, nullptr, &tc,
                                       /*seed=*/13);
    json.Value("admission_tiny", 6, "exhausted",
               static_cast<double>(shed.exhausted));
    Shape(shed.exhausted == 12 && shed.exhausted == shed.failures,
          "fully-held tiny gate sheds every query with typed "
          "kResourceExhausted (exhausted=" + std::to_string(shed.exhausted) +
              " of 12)");
  }

  json.Write();
  return 0;
}
