// Figure 13 (Appendix A.2): the B+ tree / columnstore selectivity
// crossover as a function of the number of concurrent queries.
//
// The paper ran up to 256 concurrent queries on a 40-core server. This
// host has far fewer cores, so wall-clock runs cannot reproduce the
// capacity effects; instead we measure each design's single-query CPU
// profile (serial and parallel plans, exactly as the optimizer would pick
// them at each concurrency level) and apply a processor-sharing model of
// the paper's 40-core machine: with k concurrent queries, a query with
// total work C and parallelism d completes in C / min(d, max(1, N/k)).
// The crossover is where the B+ tree curve meets the CSI curve.
#include "bench/bench_util.h"
#include "workload/micro.h"

using namespace hd;
using namespace hd::bench;

int main() {
  const uint64_t rows = static_cast<uint64_t>(4'000'000 * Scale());
  const int64_t maxv = (1ll << 31) - 1;
  const double kCores = 40;  // the paper's server
  const int kDop = 8;        // parallel plan DOP in this engine

  Database db;
  MicroOptions mo;
  mo.rows = rows;
  mo.max_value = maxv;
  Table* bt = MakeUniformIntTable(&db, "t_btree", 1, mo);
  Table* ct = MakeUniformIntTable(&db, "t_csi", 1, mo);
  if (bt == nullptr || ct == nullptr) return 1;
  if (!bt->SetPrimary(PrimaryKind::kBTree, {0}).ok()) return 1;
  if (!ct->SetPrimary(PrimaryKind::kColumnStore).ok()) return 1;
  db.WarmAll();

  // Measure CPU totals per selectivity for each design, hot runs.
  const std::vector<double> sel_pct = {0.01, 0.05, 0.1, 0.2, 0.5,
                                       1,    2,    5,   10,  20, 40};
  std::vector<double> bt_cpu, bt_serial_cpu, csi_cpu;
  BenchJson json("fig13_concurrency");
  for (double pct : sel_pct) {
    Query qb = MicroQ1Range("t_btree", pct / 100, maxv);
    Query qc = MicroQ1Range("t_csi", pct / 100, maxv);
    QueryResult rb = MedianRunResult(&db, qb, 3, false);
    QueryResult rbs = MedianRunResult(&db, qb, 3, false, 8ull << 30, 1);
    QueryResult rc = MedianRunResult(&db, qc, 3, false);
    bt_cpu.push_back(rb.metrics.cpu_ms());
    bt_serial_cpu.push_back(rbs.metrics.cpu_ms());
    csi_cpu.push_back(rc.metrics.cpu_ms());
    // hd-bench/2: embed the per-operator breakdown for each point.
    json.Point("btree_parallel", pct, rb);
    json.Point("btree_serial", pct, rbs);
    json.Point("csi_parallel", pct, rc);
  }

  // Processor-sharing latency model on the paper's 40-core box.
  auto latency = [&](double cpu_total, int dop, int k) {
    const double share = std::max(1.0, kCores / k);
    return cpu_total / std::min<double>(dop, share);
  };

  const std::vector<double> ks = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  Series cross{"crossover sel%", {}};
  for (double kd : ks) {
    const int k = static_cast<int>(kd);
    double crossing = -1;
    for (size_t i = 0; i < sel_pct.size(); ++i) {
      // B+ tree: the optimizer picks serial plans at low selectivity; use
      // whichever is faster at this concurrency.
      const double lb = std::min(latency(bt_serial_cpu[i], 1, k),
                                 latency(bt_cpu[i], kDop, k));
      const double lc = latency(csi_cpu[i], kDop, k);
      if (lc <= lb) {
        crossing = sel_pct[i];
        break;
      }
    }
    if (crossing < 0) crossing = sel_pct.back();
    cross.ys.push_back(crossing);
    json.Value("crossover", kd, "crossover_sel_pct", crossing);
  }
  json.Write();

  std::printf("Figure 13 reproduction: %llu rows, processor-sharing model of "
              "a %d-core server\n",
              static_cast<unsigned long long>(rows),
              static_cast<int>(kCores));
  PrintTable("Fig 13 selectivity crossover vs #concurrent queries",
             "#concurrent", ks, {cross});

  const double at1 = cross.ys.front();
  double peak = 0;
  for (double v : cross.ys) peak = std::max(peak, v);
  Shape(peak > at1,
        "crossover rises with concurrency (paper: ~0.1% at k=1 up to ~1% at "
        "k~128): k=1 " + std::to_string(at1) + "% peak " +
            std::to_string(peak) + "%");
  Shape(cross.ys.back() <= peak,
        "beyond peak concurrency the crossover stops rising (CPU saturation; "
        "paper observes a decline as serial plans also contend)");
  return 0;
}
