// Figure 1: execution time and CPU time vs selectivity, hot and cold runs,
// primary columnstore vs primary B+ tree (paper: 10 GB single-int-column
// table, selectivity 0 .. 100%).
#include "bench/bench_util.h"
#include "workload/micro.h"

using namespace hd;
using namespace hd::bench;

int main() {
  const uint64_t rows = static_cast<uint64_t>(4'000'000 * Scale());
  const int64_t maxv = (1ll << 31) - 1;

  // Scale-equivalent storage: the paper's table is 10 GB on a ~1 GB/s
  // array (a full cold scan takes ~10 s, dwarfing a few random B+ tree
  // I/Os). Our table is ~3 orders of magnitude smaller, so we slow the
  // simulated medium proportionally to preserve the cold-run ratios.
  DiskConfig disk;
  disk.read_bw_mb_s = 60;
  disk.write_bw_mb_s = 25;
  disk.random_latency_ms = 1.0;
  Database db(disk);
  MicroOptions mo;
  mo.rows = rows;
  mo.max_value = maxv;
  Table* bt = MakeUniformIntTable(&db, "t_btree", 1, mo);
  Table* ct = MakeUniformIntTable(&db, "t_csi", 1, mo);
  if (bt == nullptr || ct == nullptr) return 1;
  if (!bt->SetPrimary(PrimaryKind::kBTree, {0}).ok()) return 1;
  if (!ct->SetPrimary(PrimaryKind::kColumnStore).ok()) return 1;

  const std::vector<double> sel_pct = {0,    1e-5, 1e-4, 1e-3, 0.01, 0.05,
                                       0.09, 0.4,  1,    10,   30,   50,
                                       100};

  Series csi_cold{"CSI cold", {}}, bt_cold{"B+tree cold", {}};
  Series csi_hot{"CSI hot", {}}, bt_hot{"B+tree hot", {}};
  Series csi_cpu_c{"CSI cpu cold", {}}, bt_cpu_c{"B+ cpu cold", {}};
  Series csi_cpu_h{"CSI cpu hot", {}}, bt_cpu_h{"B+ cpu hot", {}};
  BenchJson json("fig1_selectivity");

  for (double pct : sel_pct) {
    const double sel = pct / 100.0;
    Query qb = MicroQ1Range("t_btree", sel, maxv);
    Query qc = MicroQ1Range("t_csi", sel, maxv);
    QueryResult rbc = MedianRunResult(&db, qb, 3, /*cold=*/true);
    QueryResult rcc = MedianRunResult(&db, qc, 3, /*cold=*/true);
    db.WarmAll();
    QueryResult rbh = MedianRunResult(&db, qb, 5, /*cold=*/false);
    QueryResult rch = MedianRunResult(&db, qc, 5, /*cold=*/false);
    const QueryMetrics& mbc = rbc.metrics;
    const QueryMetrics& mcc = rcc.metrics;
    const QueryMetrics& mbh = rbh.metrics;
    const QueryMetrics& mch = rch.metrics;
    bt_cold.ys.push_back(mbc.exec_ms());
    csi_cold.ys.push_back(mcc.exec_ms());
    bt_hot.ys.push_back(mbh.exec_ms());
    csi_hot.ys.push_back(mch.exec_ms());
    bt_cpu_c.ys.push_back(mbc.cpu_ms());
    csi_cpu_c.ys.push_back(mcc.cpu_ms());
    bt_cpu_h.ys.push_back(mbh.cpu_ms());
    csi_cpu_h.ys.push_back(mch.cpu_ms());
    // hd-bench/2: embed the per-operator breakdown for each point.
    json.Point("btree_cold", pct, rbc);
    json.Point("csi_cold", pct, rcc);
    json.Point("btree_hot", pct, rbh);
    json.Point("csi_hot", pct, rch);
  }
  json.Write();

  std::printf("Figure 1 reproduction: %llu rows, 1 int column\n",
              static_cast<unsigned long long>(rows));
  PrintTable("Fig 1(a) execution time (ms)", "sel(%)", sel_pct,
             {csi_cold, bt_cold, csi_hot, bt_hot});
  PrintTable("Fig 1(b) CPU time (ms)", "sel(%)", sel_pct,
             {csi_cpu_c, bt_cpu_c, csi_cpu_h, bt_cpu_h});

  // Shape checks against the paper's qualitative claims.
  const double lowsel_gain_hot = Ratio(csi_hot.ys[2], bt_hot.ys[2]);
  Shape(lowsel_gain_hot > 10,
        "B+ tree beats CSI by >=1 order of magnitude at low selectivity "
        "(hot), measured " + std::to_string(lowsel_gain_hot) + "x");
  const double lowsel_gain_cold = Ratio(csi_cold.ys[2], bt_cold.ys[2]);
  Shape(lowsel_gain_cold > 5,
        "cold runs favor B+ tree at low selectivity (accesses far less "
        "data), measured " + std::to_string(lowsel_gain_cold) + "x");
  const double scan_gain = Ratio(bt_hot.ys.back(), csi_hot.ys.back());
  Shape(scan_gain > 5,
        "CSI beats B+ tree for full scans (hot), measured " +
            std::to_string(scan_gain) + "x");
  const double cross_hot = CrossoverX(sel_pct, bt_hot.ys, csi_hot.ys);
  const double cross_cold = CrossoverX(sel_pct, bt_cold.ys, csi_cold.ys);
  Shape(cross_hot > 0 && cross_hot <= 10,
        "hot crossover below ~10% selectivity, measured at " +
            std::to_string(cross_hot) + "%");
  Shape(cross_cold >= cross_hot,
        "cold crossover at higher selectivity than hot (paper: ~10%), "
        "measured " + std::to_string(cross_cold) + "%");
  const double cpu_gain = Ratio(csi_cpu_h.ys[2], bt_cpu_h.ys[2]);
  Shape(cpu_gain > 100,
        "CPU time gap up to 3 orders of magnitude at low selectivity, "
        "measured " + std::to_string(cpu_gain) + "x");
  return 0;
}
