// Figure 4: group-by under a constrained memory grant, varying the number
// of groups (100 .. 1M). Primary B+ tree (streaming aggregate via sort
// order) vs primary columnstore (hash aggregate, spilling past the grant).
#include "bench/bench_util.h"
#include "workload/micro.h"

using namespace hd;
using namespace hd::bench;

int main() {
  const uint64_t rows = static_cast<uint64_t>(4'000'000 * Scale());

  DiskConfig disk;  // spill I/O at scale-equivalent speed
  disk.read_bw_mb_s = 60;
  disk.write_bw_mb_s = 25;
  disk.random_latency_ms = 1.0;
  Database db(disk);

  // Grant sized so hash aggregation fits for small group counts and
  // spills for large ones (the paper limits "grant memory" the same way).
  const uint64_t grant = 8ull << 20;

  const std::vector<double> groups = {100, 1000, 10000, 100000, 1000000};
  Series bt{"B+tree", {}}, csi{"CSI", {}};
  Series bt_spill{"B+t spilled", {}}, csi_spill{"CSI spilled", {}};
  BenchJson json("fig4_groupby");

  for (double g : groups) {
    const std::string suffix = std::to_string(static_cast<int64_t>(g));
    Table* tb = MakeGroupedTable(&db, "t_bt_" + suffix, rows,
                                 static_cast<int64_t>(g), 11);
    Table* tc = MakeGroupedTable(&db, "t_csi_" + suffix, rows,
                                 static_cast<int64_t>(g), 11);
    if (tb == nullptr || tc == nullptr) return 1;
    if (!tb->SetPrimary(PrimaryKind::kBTree, {0}).ok()) return 1;
    if (!tc->SetPrimary(PrimaryKind::kColumnStore).ok()) return 1;

    QueryResult rb = RunQuery(&db, MicroQ3("t_bt_" + suffix), grant);
    QueryResult rc = RunQuery(&db, MicroQ3("t_csi_" + suffix), grant);
    bt.ys.push_back(rb.metrics.exec_ms());
    csi.ys.push_back(rc.metrics.exec_ms());
    bt_spill.ys.push_back(rb.spilled ? 1 : 0);
    csi_spill.ys.push_back(rc.spilled ? 1 : 0);
    json.Point("B+tree", g, rb);
    json.Point("CSI", g, rc);

    // Free memory between points: drop the tables.
    db.DropTable("t_bt_" + suffix);
    db.DropTable("t_csi_" + suffix);
  }

  std::printf("Figure 4 reproduction: %llu rows, grant=%lluMB, hot\n",
              static_cast<unsigned long long>(rows),
              static_cast<unsigned long long>(grant >> 20));
  PrintTable("Fig 4 group-by execution time (ms)", "#groups", groups,
             {bt, csi, bt_spill, csi_spill});

  Shape(csi.ys.front() < bt.ys.front() / 3,
        "CSI much faster when hash agg fits in memory (paper ~5x), "
        "measured " + std::to_string(bt.ys.front() / csi.ys.front()) + "x");
  Shape(bt.ys.back() < csi.ys.back(),
        "B+ tree streaming aggregate wins when the hash agg spills "
        "(paper up to 5x), measured " +
            std::to_string(csi.ys.back() / bt.ys.back()) + "x");
  Shape(csi_spill.ys.back() == 1 && csi_spill.ys.front() == 0,
        "CSI hash aggregate spills only at high group counts");
  Shape(bt_spill.ys.back() == 0,
        "streaming aggregate never exceeds the grant");
  json.Write();
  return 0;
}
