// Figure 2 (+ Figure 12 / Appendix A.1): data skipping via sorted
// columnstores. Compares a primary B+ tree against a columnstore built on
// randomly ordered vs. pre-sorted data: execution time, data read (cold),
// and CPU time across selectivities.
#include "bench/bench_util.h"
#include "workload/micro.h"

using namespace hd;
using namespace hd::bench;

int main() {
  const uint64_t rows = static_cast<uint64_t>(4'000'000 * Scale());
  const int64_t maxv = (1ll << 31) - 1;

  DiskConfig disk;  // scale-equivalent medium (see bench_fig1)
  disk.read_bw_mb_s = 60;
  disk.write_bw_mb_s = 25;
  disk.random_latency_ms = 1.0;
  Database db(disk);

  MicroOptions mo;
  mo.rows = rows;
  mo.max_value = maxv;
  Table* bt = MakeUniformIntTable(&db, "t_btree", 1, mo);
  Table* cr = MakeUniformIntTable(&db, "t_csi_random", 1, mo);
  MicroOptions mos = mo;
  mos.sorted_on_col0 = true;
  Table* cs = MakeUniformIntTable(&db, "t_csi_sorted", 1, mos);
  if (bt == nullptr || cr == nullptr || cs == nullptr) return 1;
  if (!bt->SetPrimary(PrimaryKind::kBTree, {0}).ok()) return 1;
  if (!cr->SetPrimary(PrimaryKind::kColumnStore).ok()) return 1;
  if (!cs->SetPrimary(PrimaryKind::kColumnStore).ok()) return 1;

  const std::vector<double> sel_pct = {0,    1e-5, 1e-4, 1e-3, 0.01, 0.05,
                                       0.09, 0.4,  1,    10,   30,   50,
                                       100};

  Series bt_t{"B+tree", {}}, cr_t{"CSI random", {}}, cs_t{"CSI sorted", {}};
  Series bt_mb{"B+tree MB", {}}, cr_mb{"CSIrand MB", {}}, cs_mb{"CSIsort MB", {}};
  Series bt_cpu{"B+tree cpu", {}}, cr_cpu{"CSIrand cpu", {}}, cs_cpu{"CSIsort cpu", {}};

  for (double pct : sel_pct) {
    const double sel = pct / 100.0;
    // The predicate is a leading range (col0 < cutoff), the paper's Q1:
    // sorted segments then carry disjoint [min,max] ranges and skip.
    Query qb = MicroQ1("t_btree", sel, maxv);
    Query qr = MicroQ1("t_csi_random", sel, maxv);
    Query qs = MicroQ1("t_csi_sorted", sel, maxv);
    QueryMetrics mb = MedianRun(&db, qb, 3, /*cold=*/true);
    QueryMetrics mr = MedianRun(&db, qr, 3, /*cold=*/true);
    QueryMetrics ms = MedianRun(&db, qs, 3, /*cold=*/true);
    bt_t.ys.push_back(mb.exec_ms());
    cr_t.ys.push_back(mr.exec_ms());
    cs_t.ys.push_back(ms.exec_ms());
    bt_mb.ys.push_back(mb.data_read_mb());
    cr_mb.ys.push_back(mr.data_read_mb());
    cs_mb.ys.push_back(ms.data_read_mb());
    bt_cpu.ys.push_back(mb.cpu_ms());
    cr_cpu.ys.push_back(mr.cpu_ms());
    cs_cpu.ys.push_back(ms.cpu_ms());
  }

  std::printf("Figure 2 reproduction: %llu rows, cold runs\n",
              static_cast<unsigned long long>(rows));
  PrintTable("Fig 2(a) execution time (ms)", "sel(%)", sel_pct,
             {bt_t, cr_t, cs_t});
  PrintTable("Fig 2(b) data read (MB)", "sel(%)", sel_pct,
             {bt_mb, cr_mb, cs_mb});
  PrintTable("Fig 12 CPU time (ms)", "sel(%)", sel_pct,
             {bt_cpu, cr_cpu, cs_cpu});

  // Ignore the two lowest grid points, where min/max statistics let even
  // random-order segments skip (cutoff below every segment minimum).
  auto tail = [](const std::vector<double>& v) {
    return std::vector<double>(v.begin() + 2, v.end());
  };
  const std::vector<double> sel_tail = tail(sel_pct);
  const double cross_rand = CrossoverX(sel_tail, tail(bt_t.ys), tail(cr_t.ys));
  const double cross_sort = CrossoverX(sel_tail, tail(bt_t.ys), tail(cs_t.ys));
  Shape(cross_sort >= 0 && (cross_rand < 0 || cross_sort < cross_rand),
        "sorted CSI crossover moves to (much) lower selectivity than random "
        "CSI (paper: 0.09% vs ~10%): sorted=" + std::to_string(cross_sort) +
            "% random=" + std::to_string(cross_rand) + "%");
  // Data read: sorted CSI reads 1-2 orders of magnitude less than random.
  const size_t mid = 5;  // sel = 0.05%
  Shape(cs_mb.ys[mid] < cr_mb.ys[mid] / 10,
        "sorted CSI reads >=1 order of magnitude less data than unsorted, "
        "measured " + std::to_string(cr_mb.ys[mid] / cs_mb.ys[mid]) + "x");
  // Around its crossover the sorted CSI reads several times more data than
  // the B+ tree yet its latency is already competitive (vectorized
  // execution + megabyte-granular reads, Sec 3.2.1).
  const size_t p1 = 6;  // sel = 0.09%
  Shape(cs_mb.ys[p1] >= bt_mb.ys[p1] && cs_t.ys[p1] < bt_t.ys[p1] * 4,
        "CSI latency competitive despite reading more data (Sec 3.2.1)");
  const double cpu_cross =
      CrossoverX(sel_pct, bt_cpu.ys, cs_cpu.ys);
  Shape(cpu_cross > cross_sort,
        "CPU-time crossover for sorted CSI at higher selectivity than "
        "exec-time crossover (Appendix A.1), cpu=" + std::to_string(cpu_cross) +
            "%");
  return 0;
}
