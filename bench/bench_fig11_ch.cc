// Figure 11: CH benchmark — hybrid physical design vs B+ tree-only under
// Snapshot Isolation (SI) and Serializable (SR), with concurrent TPC-C
// transactions and analytic queries sharing the data.
#include <algorithm>
#include <map>

#include "bench/bench_util.h"
#include "core/advisor.h"
#include "workload/ch.h"

using namespace hd;
using namespace hd::bench;

namespace {

const std::vector<double> kBuckets = {0.5, 0.8, 1.2, 1.5, 2, 5, 10};

void ApplyBTreeBaseline(Database* db) {
  using C = ChCols;
  // TPC-C-style design: clustered B+ trees on the keys, secondaries on the
  // hot lookup columns.
  (void)db->GetTable("customer")->SetPrimary(PrimaryKind::kBTree, {C::kCUid});
  (void)db->GetTable("orders")->SetPrimary(PrimaryKind::kBTree, {C::kOUid});
  (void)db->GetTable("orders")->CreateSecondaryBTree("ix_o_cust",
                                                     {C::kOCUid}, {});
  (void)db->GetTable("order_line")
      ->SetPrimary(PrimaryKind::kBTree, {C::kOlOUid, C::kOlNumber});
  (void)db->GetTable("stock")->SetPrimary(PrimaryKind::kBTree, {C::kSUid});
  (void)db->GetTable("item")->SetPrimary(PrimaryKind::kBTree, {C::kIId});
  (void)db->GetTable("district")->SetPrimary(PrimaryKind::kBTree, {0});
  for (auto& [n, t] : db->tables()) t->Analyze();
}

MixedResult RunMix(ChBenchmark* ch, IsolationLevel iso, int ops) {
  TransactionManager txns;
  MixedOptions mo;
  mo.threads = 6;  // thread 0 = analytics, 1-5 = TPC-C clients
  mo.total_ops = ops;
  mo.isolation = iso;
  mo.max_dop_per_query = 1;
  mo.interval_ms = 100;  // per-interval throughput series for BENCH json
  return RunMixedTxnWorkload(ch->db(), &txns, ch->MakeGenerator(), mo);
}

}  // namespace

int main() {
  const double scale = Scale();
  const int ops = static_cast<int>(1500 * scale);

  // ---- B+ tree-only design ----
  Database db_bt;
  ChOptions co;
  co.warehouses = std::max(2, static_cast<int>(4 * scale));
  ChBenchmark ch_bt(&db_bt, co);
  ApplyBTreeBaseline(&db_bt);
  // ---- hybrid design: baseline + advisor-recommended columnstores ----
  Database db_hy;
  ChBenchmark ch_hy(&db_hy, co);
  ApplyBTreeBaseline(&db_hy);
  {
    AdvisorOptions ao;
    ao.mode = AdvisorMode::kHybrid;
    Advisor advisor(&db_hy, ao);
    auto rec = advisor.Recommend(ch_hy.AdvisorWorkload());
    if (!rec.ok()) return 1;
    std::printf("CH hybrid recommendation:\n%s\n", rec->Report().c_str());
    // Add the recommended secondaries on top of the baseline design.
    for (const auto& ci : rec->chosen) {
      Table* t = db_hy.GetTable(ci.table);
      if (t != nullptr) (void)t->ApplyIndexDef(ci.def);
    }
    for (auto& [n, t] : db_hy.tables()) t->Analyze();
  }

  std::printf("CH benchmark: %d warehouses, %d ops, 6 threads\n",
              co.warehouses, ops);

  BenchJson json("fig11_ch");

  // ---- standalone analytic medians ----
  // The fig. 11 analytics side in isolation (no concurrent TPC-C), with
  // the per-operator breakdown — join counters included — in the BENCH
  // json. Under the hybrid design the join queries run the batch-mode
  // pipeline (CSI base, Bloom pushdown, vectorized probes); the B+
  // tree-only design takes the row-mode fallback, so the two series are
  // the before/after of the batch-join work at equal plans-for-data.
  {
    const int reps = std::max(3, static_cast<int>(5 * scale));
    std::vector<Query> qs = ch_bt.AnalyticQueries(/*seed=*/12345);
    std::printf("\n== Fig 11 standalone analytics: median ms over %d runs "
                "(B+tree-only vs hybrid) ==\n",
                reps);
    std::printf("%-12s%12s%12s%10s%14s%14s\n", "query", "B+tree", "hybrid",
                "speedup", "batch probes", "bloom drop");
    uint64_t hy_probes = 0, hy_bloom_filtered = 0;
    double join_speedup_sum = 0;
    int join_count = 0;
    for (size_t qi = 0; qi < qs.size(); ++qi) {
      QueryResult rb = MedianRunResult(&db_bt, qs[qi], reps, /*cold=*/false);
      QueryResult rh = MedianRunResult(&db_hy, qs[qi], reps, /*cold=*/false);
      json.Point("analytic_btree", static_cast<double>(qi), rb);
      json.Point("analytic_hybrid", static_cast<double>(qi), rh);
      const double b = std::max(1e-3, rb.metrics.exec_ms());
      const double h = std::max(1e-3, rh.metrics.exec_ms());
      std::printf("%-12s%12.2f%12.2f%10.2f%14llu%14llu\n",
                  qs[qi].id.c_str(), b, h, b / h,
                  static_cast<unsigned long long>(
                      rh.metrics.join_batch_probes.load()),
                  static_cast<unsigned long long>(
                      rh.metrics.join_bloom_filtered.load()));
      hy_probes += rh.metrics.join_batch_probes.load();
      hy_bloom_filtered += rh.metrics.join_bloom_filtered.load();
      if (!qs[qi].joins.empty()) {
        join_speedup_sum += b / h;
        ++join_count;
      }
    }
    Shape(hy_probes > 0 && hy_bloom_filtered > 0,
          "hybrid analytics run the batch join pipeline (" +
              std::to_string(hy_probes) + " batch probes, " +
              std::to_string(hy_bloom_filtered) + " rows Bloom-filtered)");
    Shape(join_count > 0 && join_speedup_sum / join_count > 1.0,
          "join queries are faster under the hybrid design, mean speedup " +
              std::to_string(join_count ? join_speedup_sum / join_count : 0) +
              "x");
  }
  for (IsolationLevel iso :
       {IsolationLevel::kSnapshot, IsolationLevel::kSerializable}) {
    MixedResult rbt = RunMix(&ch_bt, iso, ops);
    MixedResult rhy = RunMix(&ch_hy, iso, ops);
    // x encodes the isolation level (0 = SI, 1 = SR) for the point record.
    const double x = iso == IsolationLevel::kSnapshot ? 0 : 1;
    json.MixedPoint(std::string("btree_only_") + IsolationLevelName(iso), x,
                    rbt);
    json.MixedPoint(std::string("hybrid_") + IsolationLevelName(iso), x, rhy);
    auto& bt = rbt.per_type;
    auto& hy = rhy.per_type;
    std::printf("\n== Fig 11 (%s): median latency ms (B+tree-only vs hybrid) "
                "and speedup ==\n",
                IsolationLevelName(iso));
    std::printf("%-12s%12s%12s%10s\n", "op", "B+tree", "hybrid", "speedup");
    std::vector<int> hist(kBuckets.size() + 1, 0);
    double h_speedup_sum = 0;
    int h_count = 0;
    double write_slowdown_max = 0;
    for (auto& [type, st] : bt) {
      if (hy.find(type) == hy.end()) continue;
      const double b = std::max(1e-3, st.median_ms());
      const double h = std::max(1e-3, hy[type].median_ms());
      const double sp = b / h;
      std::printf("%-12s%12.2f%12.2f%10.2f\n", type.c_str(), b, h, sp);
      size_t bk = 0;
      while (bk < kBuckets.size() && sp > kBuckets[bk]) ++bk;
      hist[bk]++;
      if (type.rfind("CH-", 0) == 0) {
        h_speedup_sum += sp;
        ++h_count;
      }
      if (type == "NewOrder" || type == "Payment") {
        write_slowdown_max = std::max(write_slowdown_max, 1.0 / sp);
      }
    }
    std::printf("speedup histogram (0.5/0.8/1.2/1.5/2/5/10/>10):");
    for (int v : hist) std::printf("%4d", v);
    std::printf("\n");
    Shape(h_count > 0 && h_speedup_sum / h_count > 1.5,
          std::string(IsolationLevelName(iso)) +
              ": hybrid speeds up the analytic (H) queries, mean speedup " +
              std::to_string(h_count ? h_speedup_sum / h_count : 0) + "x");
    Shape(write_slowdown_max < 5.0,
          std::string(IsolationLevelName(iso)) +
              ": write transactions only moderately slower under hybrid (" +
              std::to_string(write_slowdown_max) + "x)");
  }
  json.Write();
  return 0;
}
