// google-benchmark micro-benchmarks for the core structures: B+ tree
// operations, segment encodings, columnstore scans, and join probes.
// These are the engine-level ablations backing the calibration constants
// in optimizer/cost_model.h.
#include <benchmark/benchmark.h>

#include "btree/btree.h"
#include "columnstore/columnstore.h"
#include "common/rng.h"
#include "storage/buffer_pool.h"

namespace hd {
namespace {

struct Env {
  DiskModel disk;
  BufferPool pool{&disk};
};

Env* env() {
  static Env e;
  return &e;
}

void BM_BTreeBulkLoad(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<int64_t> flat;
  flat.reserve(n * 2);
  for (int64_t i = 0; i < n; ++i) {
    flat.push_back(i);
    flat.push_back(i * 3);
  }
  for (auto _ : state) {
    BTree t(1, 1, &env()->pool);
    t.BulkLoad(flat);
    benchmark::DoNotOptimize(t.num_entries());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BTreeBulkLoad)->Arg(100000);

void BM_BTreeSeek(benchmark::State& state) {
  const int64_t n = 1000000;
  std::vector<int64_t> flat;
  for (int64_t i = 0; i < n; ++i) {
    flat.push_back(i);
    flat.push_back(i);
  }
  BTree t(1, 1, &env()->pool);
  t.BulkLoad(flat);
  Rng rng(1);
  int64_t out;
  for (auto _ : state) {
    int64_t k = rng.Uniform(0, n - 1);
    benchmark::DoNotOptimize(
        t.SeekEqual(std::span<const int64_t>(&k, 1), &out, nullptr));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeSeek);

void BM_BTreeInsert(benchmark::State& state) {
  BTree t(1, 1, &env()->pool);
  t.BulkLoad({});
  Rng rng(2);
  int64_t i = 0;
  for (auto _ : state) {
    int64_t k = (i++ << 20) | rng.Uniform(0, (1 << 20) - 1);
    int64_t p = i;
    benchmark::DoNotOptimize(t.Insert(std::span<const int64_t>(&k, 1),
                                      std::span<const int64_t>(&p, 1),
                                      nullptr));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeInsert);

void BM_BTreeScan(benchmark::State& state) {
  const int64_t n = 1000000;
  std::vector<int64_t> flat;
  for (int64_t i = 0; i < n; ++i) {
    flat.push_back(i);
    flat.push_back(i);
  }
  BTree t(1, 1, &env()->pool);
  t.BulkLoad(flat);
  for (auto _ : state) {
    int64_t sum = 0;
    t.Scan(Bound::Unbounded(), Bound::Unbounded(),
           [&](const int64_t* k, const int64_t*) {
             sum += k[0];
             return true;
           },
           nullptr);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BTreeScan);

void BM_SegmentDecodeRaw(benchmark::State& state) {
  Rng rng(3);
  std::vector<int64_t> v;
  for (int i = 0; i < 131072; ++i) v.push_back(rng.Uniform(0, 1 << 30));
  ColumnSegment s;
  s.Build(v, &env()->pool);
  std::vector<int64_t> out(v.size());
  for (auto _ : state) {
    s.Decode(0, v.size(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * v.size());
}
BENCHMARK(BM_SegmentDecodeRaw);

void BM_SegmentDecodeRle(benchmark::State& state) {
  std::vector<int64_t> v;
  for (int g = 0; g < 100; ++g) {
    for (int i = 0; i < 1311; ++i) v.push_back(g);
  }
  ColumnSegment s;
  s.Build(v, &env()->pool);
  std::vector<int64_t> out(v.size());
  for (auto _ : state) {
    s.Decode(0, v.size(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * v.size());
}
BENCHMARK(BM_SegmentDecodeRle);

void BM_CsiScanWithPredicate(benchmark::State& state) {
  const size_t n = 1 << 20;
  Rng rng(4);
  std::vector<std::vector<int64_t>> cols(2);
  std::vector<int64_t> locs;
  for (size_t i = 0; i < n; ++i) {
    cols[0].push_back(rng.Uniform(0, 1 << 30));
    cols[1].push_back(rng.Uniform(0, 1000));
    locs.push_back(i);
  }
  ColumnStoreIndex csi(ColumnStoreIndex::Kind::kPrimary, 2, &env()->pool);
  csi.BulkLoad(std::move(cols), std::move(locs));
  for (auto _ : state) {
    int64_t sum = 0;
    csi.ScanGroups(0, csi.num_row_groups(), {1}, {{0, 0, 1 << 30 >> 1}},
                   [&](const ColumnBatch& b) {
                     for (int i = 0; i < b.count; ++i) sum += b.cols[0][i];
                     return true;
                   },
                   nullptr, /*need_locators=*/false);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CsiScanWithPredicate);

void BM_SegmentBuild(benchmark::State& state) {
  Rng rng(5);
  std::vector<int64_t> v;
  for (int i = 0; i < 131072; ++i) v.push_back(rng.Uniform(0, 100000));
  for (auto _ : state) {
    ColumnSegment s;
    s.Build(v, &env()->pool);
    benchmark::DoNotOptimize(s.size_bytes());
  }
  state.SetItemsProcessed(state.iterations() * v.size());
}
BENCHMARK(BM_SegmentBuild);

void BM_BufferPoolAccessHot(benchmark::State& state) {
  DiskModel disk;
  BufferPool pool(&disk);
  std::vector<ExtentId> ids;
  for (int i = 0; i < 1024; ++i) ids.push_back(pool.Register(kPageBytes));
  Rng rng(8);
  QueryMetrics m;
  for (auto _ : state) {
    pool.Access(ids[rng.Uniform(0, 1023)], IoPattern::kRandom, &m);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferPoolAccessHot);

void BM_RowGroupBuildWithCompressionSort(benchmark::State& state) {
  Rng rng(9);
  const size_t n = 65536;
  std::vector<std::vector<int64_t>> cols(4);
  for (size_t i = 0; i < n; ++i) {
    cols[0].push_back(rng.Uniform(0, 20));
    cols[1].push_back(rng.Uniform(0, 200));
    cols[2].push_back(rng.Uniform(0, 1 << 20));
    cols[3].push_back(static_cast<int64_t>(i));
  }
  std::vector<int64_t> locs(n);
  for (size_t i = 0; i < n; ++i) locs[i] = static_cast<int64_t>(i);
  CsiOptions opts;
  for (auto _ : state) {
    RowGroup g;
    g.Build(cols, locs, opts, &env()->pool);
    benchmark::DoNotOptimize(g.size_bytes());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RowGroupBuildWithCompressionSort);

}  // namespace
}  // namespace hd

BENCHMARK_MAIN();
