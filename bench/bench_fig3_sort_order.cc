// Figure 3: explicit sort order (Q2: filter col0, ORDER BY col1) across
// three physical designs — (a) primary CSI, (b) primary B+ tree keyed on
// the filter column, (c) primary B+ tree keyed on the order column.
// Reports execution time and query memory, hot runs (data memory-resident).
#include "bench/bench_util.h"
#include "workload/micro.h"

using namespace hd;
using namespace hd::bench;

int main() {
  const uint64_t rows = static_cast<uint64_t>(2'000'000 * Scale());
  const int64_t maxv = (1ll << 31) - 1;

  Database db;
  MicroOptions mo;
  mo.rows = rows;
  mo.max_value = maxv;
  Table* a = MakeUniformIntTable(&db, "t_csi", 2, mo);
  Table* b = MakeUniformIntTable(&db, "t_bt_filter", 2, mo);
  Table* c = MakeUniformIntTable(&db, "t_bt_order", 2, mo);
  if (a == nullptr || b == nullptr || c == nullptr) return 1;
  if (!a->SetPrimary(PrimaryKind::kColumnStore).ok()) return 1;
  if (!b->SetPrimary(PrimaryKind::kBTree, {0}).ok()) return 1;  // filter col
  if (!c->SetPrimary(PrimaryKind::kBTree, {1}).ok()) return 1;  // order col

  const std::vector<double> sel_pct = {0,    1e-4, 1e-3, 0.01, 0.05, 0.09,
                                       0.4,  1,    10,   30,   50,   100};

  Series ta{"CSI", {}}, tb{"B+tree(col0)", {}}, tc{"B+tree(col1)", {}};
  Series ma{"CSI memGB", {}}, mb2{"B+t(c0) memGB", {}}, mc{"B+t(c1) memGB", {}};

  for (double pct : sel_pct) {
    const double sel = pct / 100.0;
    QueryMetrics ra = MedianRun(&db, MicroQ2("t_csi", sel, maxv), 3, false);
    QueryMetrics rb = MedianRun(&db, MicroQ2("t_bt_filter", sel, maxv), 3, false);
    QueryMetrics rc = MedianRun(&db, MicroQ2("t_bt_order", sel, maxv), 3, false);
    ta.ys.push_back(ra.exec_ms());
    tb.ys.push_back(rb.exec_ms());
    tc.ys.push_back(rc.exec_ms());
    const double gb = 1024.0 * 1024.0 * 1024.0;
    ma.ys.push_back(ra.peak_memory_bytes.load() / gb);
    mb2.ys.push_back(rb.peak_memory_bytes.load() / gb);
    mc.ys.push_back(rc.peak_memory_bytes.load() / gb);
  }

  std::printf("Figure 3 reproduction: %llu rows, 2 int columns, hot\n",
              static_cast<unsigned long long>(rows));
  PrintTable("Fig 3(a) execution time (ms)", "sel(%)", sel_pct, {ta, tb, tc});
  PrintTable("Fig 3(b) query memory (GB)", "sel(%)", sel_pct, {ma, mb2, mc});

  // Option (b) wins at low selectivity; option (a) wins above ~1%.
  const size_t lo = 2;  // 0.001%
  Shape(tb.ys[lo] < ta.ys[lo] && tb.ys[lo] < tc.ys[lo],
        "B+ tree on the filter column is best at low selectivity");
  const size_t hi = sel_pct.size() - 2;  // 50%
  Shape(ta.ys[hi] < tb.ys[hi] && ta.ys[hi] < tc.ys[hi],
        "CSI wins above ~1% selectivity despite sorting (efficient scan)");
  // Option (c): no sort, hence minimal query memory at every selectivity.
  bool c_low_mem = true;
  for (size_t i = 0; i < sel_pct.size(); ++i) {
    c_low_mem &= mc.ys[i] <= ma.ys[i] + 1e-9 && mc.ys[i] <= mb2.ys[i] + 1e-9;
  }
  Shape(c_low_mem,
        "B+ tree on the order column never sorts: lowest memory footprint");
  Shape(tc.ys[lo] > tb.ys[lo] * 5,
        "option (c) pays a full ordered scan even for selective filters");
  return 0;
}
