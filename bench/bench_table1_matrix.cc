// Table 1: the suitability matrix — which physical structure (B+ tree,
// primary CSI, secondary CSI) suits which workload axis (short scans,
// large scans, short updates, large updates). Each cell is measured by
// forcing the corresponding access path / design on a TPC-H lineitem
// table. Also prints the paper's Figure 8 run-length encoding example.
#include "bench/bench_util.h"
#include "columnstore/encoding.h"
#include "workload/tpch.h"

using namespace hd;
using namespace hd::bench;

namespace {

constexpr int kShortDays = 2;
constexpr double kLargeUpdateFrac = 0.25;

double Med(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

double MeasureScan(Database* db, const std::string& table, int days) {
  RunQuery(db, TpchQ5Range(table, kTpchShipDateLo + 299, days));  // warm up
  std::vector<double> runs;
  for (int i = 0; i < 5; ++i) {
    Query q = TpchQ5Range(table, kTpchShipDateLo + 300 + i, days);
    runs.push_back(RunQuery(db, q).metrics.exec_ms());
  }
  return Med(runs);
}

double MeasureUpdate(Database* db, const std::string& table, int64_t n,
                     int* cursor) {
  std::vector<double> runs;
  for (int i = 0; i < 3; ++i) {
    Query q = TpchQ4(table, n, kTpchShipDateLo + (*cursor)++);
    if (n > 1000) {
      q.base.preds.clear();
      const int days = static_cast<int>(n / 800) + 1;
      q.base.preds.push_back(
          Pred::Between(LineitemCols::kShipDate,
                        Value::Date(kTpchShipDateLo + *cursor),
                        Value::Date(kTpchShipDateLo + *cursor + days)));
      *cursor += days + 1;
    }
    runs.push_back(RunQuery(db, q).metrics.exec_ms());
  }
  return Med(runs);
}

void PrintFig8Example() {
  std::printf("\n== Fig 8 RLE example (paper's data, sorted by <B, A>) ==\n");
  std::vector<int64_t> a = {0, 1, 3, 3, 3, 3};
  std::vector<int64_t> b = {0, 0, 0, 1, 1, 1};
  std::printf("A: 0 1 3 3 3 3  -> %llu runs (paper: (0,1),(1,1),(3,4))\n",
              static_cast<unsigned long long>(CountRuns(a)));
  std::printf("B: 0 0 0 1 1 1  -> %llu runs (paper: (0,3),(1,3))\n",
              static_cast<unsigned long long>(CountRuns(b)));
}

}  // namespace

int main() {
  const uint64_t rows = static_cast<uint64_t>(800'000 * Scale());
  using L = LineitemCols;
  TpchOptions to;
  to.rows = rows;

  Database db;
  // Design/structure under test, one table each.
  Table* t_bt = MakeLineitem(&db, "li_bt", to);
  Table* t_pc = MakeLineitem(&db, "li_pc", to);
  Table* t_sc = MakeLineitem(&db, "li_sc", to);
  if (t_bt == nullptr || t_pc == nullptr || t_sc == nullptr) return 1;

  // B+ tree: clustered + covering secondary on shipdate (Table 1 assumes
  // covering secondaries).
  if (!t_bt->SetPrimary(PrimaryKind::kBTree, {L::kOrderKey, L::kLineNumber}).ok())
    return 1;
  if (!t_bt->CreateSecondaryBTree(
            "ix_ship", {L::kShipDate},
            {L::kQuantity, L::kExtendedPrice, L::kDiscount}).ok())
    return 1;
  // Primary CSI.
  if (!t_pc->SetPrimary(PrimaryKind::kColumnStore).ok()) return 1;
  if (!t_pc->CreateSecondaryBTree("ix_ship", {L::kShipDate}, {}).ok()) return 1;
  // Secondary CSI over a clustered B+ tree (operational analytics design).
  if (!t_sc->SetPrimary(PrimaryKind::kBTree, {L::kOrderKey, L::kLineNumber}).ok())
    return 1;
  if (!t_sc->CreateSecondaryBTree("ix_ship", {L::kShipDate}, {}).ok()) return 1;
  if (!t_sc->CreateSecondaryColumnStore("csi").ok()) return 1;
  for (Table* t : {t_bt, t_pc, t_sc}) t->Analyze();

  // Give the secondary CSI a populated delete buffer (its steady state in
  // an operational system) so scans pay the anti-semi-join.
  {
    int cursor = 2000;
    MeasureUpdate(&db, "li_sc", 800, &cursor);
  }

  std::vector<std::string> workloads = {"short scans", "large scans",
                                        "short updates", "large updates"};
  // Measured matrix [workload][design].
  double m[4][3];
  int cur_bt = 0, cur_pc = 500, cur_sc = 1000;
  m[0][0] = MeasureScan(&db, "li_bt", kShortDays);
  m[0][1] = MeasureScan(&db, "li_pc", kShortDays);
  m[0][2] = MeasureScan(&db, "li_sc", kShortDays);
  m[1][0] = MeasureScan(&db, "li_bt", 2500);  // whole date domain
  m[1][1] = MeasureScan(&db, "li_pc", 2500);
  m[1][2] = MeasureScan(&db, "li_sc", 2500);
  m[2][0] = MeasureUpdate(&db, "li_bt", 10, &cur_bt);
  m[2][1] = MeasureUpdate(&db, "li_pc", 10, &cur_pc);
  m[2][2] = MeasureUpdate(&db, "li_sc", 10, &cur_sc);
  const int64_t big = static_cast<int64_t>(rows * kLargeUpdateFrac);
  m[3][0] = MeasureUpdate(&db, "li_bt", big, &cur_bt);
  m[3][1] = MeasureUpdate(&db, "li_pc", big, &cur_pc);
  m[3][2] = MeasureUpdate(&db, "li_sc", big, &cur_sc);

  std::printf("Table 1 reproduction: measured ms per workload x design "
              "(%llu-row lineitem)\n",
              static_cast<unsigned long long>(rows));
  std::printf("%-16s%16s%16s%16s\n", "workload", "B+tree-only", "Pri.CSI",
              "Sec.CSI+B+t");
  for (int w = 0; w < 4; ++w) {
    std::printf("%-16s%16.3f%16.3f%16.3f\n", workloads[w].c_str(), m[w][0],
                m[w][1], m[w][2]);
  }

  PrintFig8Example();

  // Paper's Table 1 ranks.
  Shape(m[0][0] <= m[0][1] && m[0][0] <= m[0][2],
        "short scans: B+ tree most suitable");
  Shape(m[1][1] <= m[1][0] && m[1][1] <= m[1][2],
        "large scans: primary CSI most suitable");
  Shape(m[1][2] <= m[1][0],
        "large scans: secondary CSI beats B+ tree (medium)");
  Shape(m[2][0] <= m[2][1] && m[2][0] <= m[2][2],
        "short updates: B+ tree most suitable");
  Shape(m[2][2] <= m[2][1],
        "short updates: secondary CSI beats primary CSI (medium vs least)");
  Shape(m[3][0] <= m[3][1] && m[3][0] <= m[3][2],
        "large updates: B+ tree most suitable");
  return 0;
}
