// Section 4.5 extension ablation: sorted columnstores (Vertica-style
// projection order) in the advisor's candidate space.
//
// A range-heavy analytic workload is tuned three ways: unsorted CSI only,
// sorted CSI enabled (the extension), and B+ tree-only. The sorted
// projection keeps batch-mode execution while adding data skipping, which
// neither alternative offers simultaneously.
#include "bench/bench_util.h"
#include "core/advisor.h"
#include "common/rng.h"
#include "workload/micro.h"

using namespace hd;
using namespace hd::bench;

int main() {
  const uint64_t rows = static_cast<uint64_t>(3'000'000 * Scale());
  const int64_t maxv = (1ll << 31) - 1;
  Database db;
  MicroOptions mo;
  mo.rows = rows;
  mo.max_value = maxv;
  Table* t = MakeUniformIntTable(&db, "t", 3, mo);
  if (t == nullptr) return 1;

  // Range-heavy workload: 2% windows on col0, aggregating col1/col2.
  std::vector<Query> w;
  Rng rng(3);
  for (int i = 0; i < 12; ++i) {
    Query q;
    q.id = "W" + std::to_string(i);
    q.base.table = "t";
    const int64_t lo = rng.Uniform(0, maxv - maxv / 50);
    q.base.preds = {Pred::Between(0, Value::Int64(lo),
                                  Value::Int64(lo + maxv / 50))};
    q.aggs = {AggSpec::Sum(Expr::Col(0, 1), "s1"),
              AggSpec::Sum(Expr::Col(0, 2), "s2")};
    w.push_back(q);
  }

  BenchJson json("ext_sorted_csi");
  int step = 0;
  auto measure = [&](const char* label) {
    QueryMetrics total;
    for (const auto& q : w) {
      total.Merge(RunQuery(&db, q, 8ull << 30, 1).metrics);
    }
    const double cpu = total.cpu_ms();
    std::printf("%-28s total cpu %10.2f ms  (segments_skipped %llu, "
                "runs_evaluated %llu)\n",
                label, cpu,
                static_cast<unsigned long long>(total.segments_skipped.load()),
                static_cast<unsigned long long>(total.runs_evaluated.load()));
    json.Point(label, step++, total);
    return cpu;
  };

  // (a) unsorted columnstore.
  t->DropAllSecondaries();
  if (!t->CreateSecondaryColumnStore("csi_plain").ok()) return 1;
  t->Analyze();
  const double unsorted = measure("unsorted CSI");

  // (b) sorted columnstore on the range column (the extension).
  t->DropAllSecondaries();
  if (!t->CreateSecondaryColumnStore("csi_sorted", /*sort_col=*/0).ok())
    return 1;
  t->Analyze();
  const double sorted = measure("sorted CSI (Sec 4.5 ext)");

  // (c) covering B+ tree.
  t->DropAllSecondaries();
  if (!t->CreateSecondaryBTree("ix", {0}, {1, 2}).ok()) return 1;
  t->Analyze();
  const double btree = measure("covering B+ tree");

  // (d) Does the advisor (with the extension) discover the sorted CSI?
  t->DropAllSecondaries();
  t->Analyze();
  Advisor advisor(&db);
  auto rec = advisor.Recommend(w);
  if (!rec.ok()) return 1;
  std::printf("\nadvisor recommendation:\n%s", rec->Report().c_str());
  bool recommended_sorted = false;
  for (const auto& ci : rec->chosen) {
    recommended_sorted |=
        ci.def.is_columnstore() && !ci.def.key_cols.empty();
  }

  Shape(sorted < unsorted / 3,
        "sorted projection beats unsorted CSI via segment elimination, "
        "measured " + std::to_string(unsorted / sorted) + "x");
  Shape(recommended_sorted,
        "the extended advisor recommends the sorted columnstore candidate");
  Shape(sorted < btree * 3,
        "sorted CSI competitive with a covering B+ tree on 2% ranges "
        "(batch mode offsets the coarser skipping granularity)");
  json.Write();
  return 0;
}
