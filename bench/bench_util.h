// Shared helpers for the figure/table reproduction benches.
//
// Each bench binary regenerates one table or figure from the paper: it
// prints the same x-axis points and series the paper plots, plus a SHAPE
// line summarizing the qualitative claim (who wins, where the crossover
// falls). Absolute numbers differ from the paper's SQL Server testbed;
// the shapes are the reproduction target (see EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "obs/query_store.h"
#include "optimizer/optimizer.h"
#include "workload/mixed_driver.h"

namespace hd {
namespace bench {

/// Scale multiplier from the environment (HD_BENCH_SCALE, default 1.0).
/// Benches size their data so scale 1.0 finishes in tens of seconds.
inline double Scale() {
  const char* s = std::getenv("HD_BENCH_SCALE");
  return s != nullptr ? std::atof(s) : 1.0;
}

/// HD_BENCH_CAPTURE=1 routes every RunQuery through a process-global
/// query store (HD_BENCH_QLOG names an optional hd-qlog/1 output file).
/// This is how EXPERIMENTS.md "Capture overhead" measures the cost of
/// the observability path: run a bench with and without the env var and
/// compare. Returns nullptr when capture is off (the default).
inline QueryStore* CaptureStore() {
  static QueryStore* store = []() -> QueryStore* {
    const char* e = std::getenv("HD_BENCH_CAPTURE");
    if (e == nullptr || e[0] == '\0' || e[0] == '0') return nullptr;
    QueryStoreOptions o;
    if (const char* p = std::getenv("HD_BENCH_QLOG")) o.qlog_path = p;
    return new QueryStore(o);  // leaked: lives for the bench process
  }();
  return store;
}

/// Common CLI flags for the concurrency-aware benches (see EXPERIMENTS.md):
///   --threads=N           override the client-count sweep with a single N
///   --queries=N           total queries per measured point
///   --shared={on,off,both} restrict which scan-sharing series run
/// Unknown flags abort with a message naming the binary (typo protection);
/// flags a bench does not consult are simply ignored by it.
struct BenchFlags {
  int threads = 0;   // 0 = bench's default sweep
  int queries = 0;   // 0 = bench's default volume
  std::string shared = "both";
  /// Drive the measured queries through hd_server sockets (SQL text over
  /// hd-proto/1) instead of in-process Executor calls. Only benches that
  /// document a remote mode honor it (EXPERIMENTS.md).
  bool remote = false;

  bool RunShared() const { return shared != "off"; }
  bool RunPrivate() const { return shared != "on"; }
};

inline BenchFlags ParseFlags(int argc, char** argv) {
  BenchFlags f;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto val = [&](const char* prefix) -> const char* {
      const size_t n = std::string(prefix).size();
      return a.compare(0, n, prefix) == 0 ? a.c_str() + n : nullptr;
    };
    if (const char* v = val("--threads=")) {
      f.threads = std::atoi(v);
    } else if (const char* v = val("--queries=")) {
      f.queries = std::atoi(v);
    } else if (const char* v = val("--shared=")) {
      f.shared = v;
      if (f.shared != "on" && f.shared != "off" && f.shared != "both") {
        std::fprintf(stderr, "%s: --shared must be on|off|both\n", argv[0]);
        std::exit(2);
      }
    } else if (a == "--remote") {
      f.remote = true;
    } else {
      std::fprintf(stderr, "%s: unknown flag %s\n", argv[0], a.c_str());
      std::exit(2);
    }
  }
  return f;
}

struct Series {
  std::string name;
  std::vector<double> ys;
};

/// Print a CSV-ish aligned table: x column plus one column per series.
inline void PrintTable(const std::string& title, const std::string& xlabel,
                       const std::vector<double>& xs,
                       const std::vector<Series>& series) {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("%-14s", xlabel.c_str());
  for (const auto& s : series) std::printf("%16s", s.name.c_str());
  std::printf("\n");
  for (size_t i = 0; i < xs.size(); ++i) {
    std::printf("%-14g", xs[i]);
    for (const auto& s : series) {
      if (i < s.ys.size()) {
        std::printf("%16.4f", s.ys[i]);
      } else {
        std::printf("%16s", "-");
      }
    }
    std::printf("\n");
  }
}

/// First x at which series b becomes cheaper than (or equal to) series a;
/// returns -1 if never.
inline double CrossoverX(const std::vector<double>& xs,
                         const std::vector<double>& a,
                         const std::vector<double>& b) {
  for (size_t i = 0; i < xs.size(); ++i) {
    if (b[i] <= a[i]) return xs[i];
  }
  return -1;
}

inline double Ratio(double a, double b) { return b > 0 ? a / b : 0; }

/// Execute a query end-to-end: optimize under the current catalog, run.
inline QueryResult RunQuery(Database* db, const Query& q,
                            uint64_t grant = 8ull << 30, int max_dop = 8,
                            bool cold = false) {
  Optimizer opt(db);
  Configuration cfg = Configuration::FromCatalog(*db);
  PlanOptions popts;
  popts.memory_grant_bytes = grant;
  popts.max_dop = max_dop;
  popts.cold = cold;
  auto plan = opt.Plan(q, cfg, popts);
  if (!plan.ok()) {
    std::fprintf(stderr, "plan failed: %s\n", plan.status().ToString().c_str());
    std::abort();
  }
  if (cold) db->ColdStart();
  ExecContext ctx;
  ctx.db = db;
  ctx.memory_grant_bytes = grant;
  ctx.max_dop = max_dop;
  if (QueryStore* qs = CaptureStore()) {
    // Bench queries are built programmatically — there is no SQL text,
    // so the query id doubles as the statement class. The store still
    // pays its full record/aggregate/qlog cost, which is the point.
    ctx.query_store = qs;
    ctx.capture.sql = q.id;
    ctx.capture.norm = q.id;
    ctx.capture.fingerprint = FingerprintText(q.id);
  }
  Executor ex(ctx);
  QueryResult r = ex.Execute(q, plan->plan);
  if (!r.ok()) {
    std::fprintf(stderr, "exec failed: %s\n", r.status.ToString().c_str());
    std::abort();
  }
  return r;
}

/// Median run (by exec_ms) over `reps` runs, with the full result
/// (metrics plus the per-operator breakdown) of the median repetition.
inline QueryResult MedianRunResult(Database* db, const Query& q, int reps,
                                   bool cold, uint64_t grant = 8ull << 30,
                                   int max_dop = 8) {
  std::vector<QueryResult> rs;
  for (int i = 0; i < reps; ++i) {
    rs.push_back(RunQuery(db, q, grant, max_dop, cold));
  }
  std::sort(rs.begin(), rs.end(), [](const QueryResult& a, const QueryResult& b) {
    return a.metrics.exec_ms() < b.metrics.exec_ms();
  });
  return std::move(rs[rs.size() / 2]);
}

/// Median execution metrics over `reps` runs.
inline QueryMetrics MedianRun(Database* db, const Query& q, int reps,
                              bool cold, uint64_t grant = 8ull << 30,
                              int max_dop = 8) {
  return MedianRunResult(db, q, reps, cold, grant, max_dop).metrics;
}

inline void Shape(bool ok, const std::string& claim) {
  std::printf("SHAPE %-4s %s\n", ok ? "[ok]" : "[??]", claim.c_str());
}

/// Machine-readable bench output: collects one record per measured point
/// (plotted value plus the execution counters — morsel scheduling,
/// encoded-domain predicate work) and writes `BENCH_<name>.json` in the
/// working directory on Write().
///
/// Schema (the "schema" field in the output, see docs/OBSERVABILITY.md):
///   hd-bench/3 — adds the MixedPoint record (per-stream latency
///   percentiles p50/p95/p99/p999 plus a per-interval throughput series)
///   for the mixed-workload benches. hd-bench/2 added an optional
///   per-point "operators" array (one entry per physical plan node,
///   emitted by the QueryResult overload of Point) to the hd-bench/1 flat
///   point records. Consumers should key on field names, not field order.
class BenchJson {
 public:
  static constexpr const char* kSchema = "hd-bench/3";

  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  /// Record one measured point of `series` with its full metrics block.
  void Point(const std::string& series, double x, const QueryMetrics& m) {
    points_.push_back(MetricsRecord(series, x, m) + "}");
  }

  /// Record one measured point with the per-operator breakdown embedded
  /// (an "operators" array in plan pipeline order, leaf scan first).
  void Point(const std::string& series, double x, const QueryResult& r) {
    std::string rec = MetricsRecord(series, x, r.metrics);
    rec += ", \"operators\": [";
    for (size_t i = 0; i < r.operators.size(); ++i) {
      const OperatorProfile& op = r.operators[i];
      const QueryMetrics& m = op.metrics;
      char buf[768];
      std::snprintf(
          buf, sizeof buf,
          "%s{\"name\": \"%s\", \"phase\": \"%s\", \"est_rows\": %g, "
          "\"rows_in\": %llu, \"rows_out\": %llu, \"cpu_ms\": %.4f, "
          "\"io_ms\": %.4f, \"rows_scanned\": %llu, "
          "\"segments_scanned\": %llu, \"segments_skipped\": %llu, "
          "\"morsels_scheduled\": %llu, \"spill_bytes\": %llu, "
          "\"join_batch_probes\": %llu, \"join_matches\": %llu, "
          "\"join_bloom_checks\": %llu, \"join_bloom_filtered\": %llu}",
          i ? ", " : "", op.name.c_str(), op.phase.c_str(), op.est_rows,
          static_cast<unsigned long long>(op.rows_in),
          static_cast<unsigned long long>(op.rows_out), m.cpu_ms(),
          m.sim_io_ms(),
          static_cast<unsigned long long>(m.rows_scanned.load()),
          static_cast<unsigned long long>(m.segments_scanned.load()),
          static_cast<unsigned long long>(m.segments_skipped.load()),
          static_cast<unsigned long long>(m.morsels_scheduled.load()),
          static_cast<unsigned long long>(m.spill_bytes.load()),
          static_cast<unsigned long long>(m.join_batch_probes.load()),
          static_cast<unsigned long long>(m.join_matches.load()),
          static_cast<unsigned long long>(m.join_bloom_checks.load()),
          static_cast<unsigned long long>(m.join_bloom_filtered.load()));
      rec += buf;
    }
    rec += "]}";
    points_.push_back(std::move(rec));
  }

  /// Record one mixed-workload run: per-stream latency percentiles
  /// (p50/p95/p99/p999) and, when the driver produced one, the
  /// per-interval throughput series (hd-bench/3).
  void MixedPoint(const std::string& series, double x, const MixedResult& r) {
    char buf[512];
    uint64_t total_ops = 0;
    for (const auto& [t, s] : r.per_type) total_ops += s.count;
    std::snprintf(buf, sizeof buf,
                  "{\"series\": \"%s\", \"x\": %g, \"wall_ms\": %.4f, "
                  "\"total_ops\": %llu, \"throughput_ops_s\": %.4f, "
                  "\"aborts\": %llu, \"retries\": %llu, \"failures\": %llu",
                  series.c_str(), x, r.wall_ms,
                  static_cast<unsigned long long>(total_ops),
                  r.wall_ms > 0 ? total_ops * 1000.0 / r.wall_ms : 0.0,
                  static_cast<unsigned long long>(r.total_aborts),
                  static_cast<unsigned long long>(r.total_retries),
                  static_cast<unsigned long long>(r.total_failures));
    std::string rec = buf;
    rec += ", \"streams\": {";
    bool first = true;
    // Transactional streams first, then the concurrent analytic streams
    // (MixedResult::analytic) — same record shape, distinguished by the
    // statement id the generator assigned.
    for (const auto* map : {&r.per_type, &r.analytic}) {
      for (const auto& [type, s] : *map) {
        std::snprintf(buf, sizeof buf,
                      "%s\"%s\": {\"ops\": %llu, \"mean_ms\": %.4f, "
                      "\"p50_ms\": %.4f, \"p95_ms\": %.4f, \"p99_ms\": %.4f, "
                      "\"p999_ms\": %.4f, \"failures\": %llu}",
                      first ? "" : ", ", type.c_str(),
                      static_cast<unsigned long long>(s.count), s.mean_ms(),
                      s.median_ms(), s.p95_ms(), s.p99_ms(), s.p999_ms(),
                      static_cast<unsigned long long>(s.failures));
        rec += buf;
        first = false;
      }
    }
    rec += "}";
    if (!r.intervals.empty()) {
      rec += ", \"intervals\": [";
      for (size_t i = 0; i < r.intervals.size(); ++i) {
        const MixedInterval& iv = r.intervals[i];
        std::snprintf(buf, sizeof buf,
                      "%s{\"start_ms\": %.1f, \"end_ms\": %.1f, "
                      "\"ops\": %llu, \"throughput_ops_s\": %.4f}",
                      i ? ", " : "", iv.start_ms, iv.end_ms,
                      static_cast<unsigned long long>(iv.ops),
                      iv.throughput_ops_s);
        rec += buf;
      }
      rec += "]";
    }
    rec += "}";
    points_.push_back(std::move(rec));
  }

  /// Record a point carrying a scalar only (wall-clock series etc.).
  void Value(const std::string& series, double x, const char* key, double v) {
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  "{\"series\": \"%s\", \"x\": %g, \"%s\": %.4f}",
                  series.c_str(), x, key, v);
    points_.emplace_back(buf);
  }

  void Write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return;
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"schema\": \"%s\",\n  \"points\": [\n",
                 name_.c_str(), kSchema);
    for (size_t i = 0; i < points_.size(); ++i) {
      std::fprintf(f, "    %s%s\n", points_[i].c_str(),
                   i + 1 < points_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu points)\n", path.c_str(), points_.size());
  }

 private:
  /// Flat counter record shared by both Point overloads; returned without
  /// the closing brace so callers can append fields.
  static std::string MetricsRecord(const std::string& series, double x,
                                   const QueryMetrics& m) {
    char buf[1024];
    std::snprintf(
        buf, sizeof buf,
        "{\"series\": \"%s\", \"x\": %g, \"exec_ms\": %.4f, "
        "\"cpu_ms\": %.4f, \"io_ms\": %.4f, \"dop\": %d, "
        "\"morsels_scheduled\": %llu, \"morsels_stolen\": %llu, "
        "\"segments_skipped\": %llu, \"runs_evaluated\": %llu, "
        "\"rows_decoded\": %llu, \"rows_scanned\": %llu, "
        "\"rows_selected\": %llu, \"rows_late_materialized\": %llu, "
        "\"aggs_pushed_down\": %llu, \"hash_probes\": %llu, "
        "\"join_batch_probes\": %llu, \"join_matches\": %llu, "
        "\"join_bloom_checks\": %llu, \"join_bloom_filtered\": %llu, "
        "\"segments_shared\": %llu, \"decode_bytes_saved\": %llu",
        series.c_str(), x, m.exec_ms(), m.cpu_ms(), m.sim_io_ms(), m.dop,
        static_cast<unsigned long long>(m.morsels_scheduled.load()),
        static_cast<unsigned long long>(m.morsels_stolen.load()),
        static_cast<unsigned long long>(m.segments_skipped.load()),
        static_cast<unsigned long long>(m.runs_evaluated.load()),
        static_cast<unsigned long long>(m.rows_decoded.load()),
        static_cast<unsigned long long>(m.rows_scanned.load()),
        static_cast<unsigned long long>(m.rows_selected.load()),
        static_cast<unsigned long long>(m.rows_late_materialized.load()),
        static_cast<unsigned long long>(m.aggs_pushed_down.load()),
        static_cast<unsigned long long>(m.hash_probes.load()),
        static_cast<unsigned long long>(m.join_batch_probes.load()),
        static_cast<unsigned long long>(m.join_matches.load()),
        static_cast<unsigned long long>(m.join_bloom_checks.load()),
        static_cast<unsigned long long>(m.join_bloom_filtered.load()),
        static_cast<unsigned long long>(m.segments_shared.load()),
        static_cast<unsigned long long>(m.shared_decode_bytes_saved.load()));
    return buf;
  }

  std::string name_;
  std::vector<std::string> points_;
};

}  // namespace bench
}  // namespace hd
